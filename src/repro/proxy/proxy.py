"""The last-hop proxy: the paper's Figure 7 algorithm.

The proxy relays notifications between the fixed pub/sub infrastructure
and a mobile device. Its three entry points mirror the pseudo-code's
three main routines:

* :meth:`LastHopProxy.on_notification` — ``NOTIFICATION(event)``, called
  when a new outside event (or a rank change) arrives;
* :meth:`LastHopProxy.on_read` — ``READ(N, queue_size, client_events)``,
  called when the user reads; "essentially, a read is not a request for
  more data, but a request for 'better' data if it exists";
* :meth:`LastHopProxy.on_network` — ``NETWORK(status)``, called when the
  last-hop link goes up or down.

Unlike the pseudo-code, which "did not include garbage collection", the
proxy cancels dead timers and exposes :meth:`collect_garbage` so that
year-long runs stay bounded (see :mod:`repro.proxy.gc`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Set, Tuple

from repro.broker.message import Notification
from repro.errors import ConfigurationError, ProxyError
from repro.metrics.accounting import RunStats
from repro.obs.audit import Auditor
from repro.obs.recorder import TraceRecorder
from repro.proxy.delay import DelayTracker
from repro.proxy.policies import PolicyConfig
from repro.proxy.prefetch import BufferPrefetcher, RatePrefetcher
from repro.proxy.schedule import DeliverySchedule
from repro.proxy.queues import highest_ranked
from repro.proxy.state import TopicState
from repro.sim.engine import Simulator
from repro.types import DeliveryMode, EventId, NetworkStatus, PolicyKind, TopicId, TopicType


class Transport(Protocol):
    """Last-hop downlink the proxy forwards through (implemented by
    :class:`repro.device.link.LastHopLink`)."""

    def deliver(self, notification: Notification, mode: DeliveryMode) -> None:
        """Ship one notification to the device."""

    def retract(self, event_id: EventId) -> None:
        """Tell the device a forwarded notification's rank dropped below
        the threshold and it should be discarded."""


@dataclass(frozen=True)
class ProxyConfig:
    """Proxy-wide configuration; per-topic settings live on the topics."""

    policy: PolicyConfig = field(default_factory=PolicyConfig.unified)

    def validate(self) -> None:
        self.policy.validate()


@dataclass(frozen=True)
class ReadResponse:
    """Outcome of one READ exchange, for callers that want it."""

    #: Notifications shipped to the device because they beat what the
    #: client already held.
    sent: Tuple[Notification, ...]
    #: How many candidates the proxy considered across its queues.
    candidates: int


class LastHopProxy:
    """One proxy instance serving one mobile device.

    A proxy can manage several topics for its device (our extension; the
    paper's evaluation uses one). Each topic gets its own
    :class:`~repro.proxy.state.TopicState`, moving averages, and queues,
    all governed by the configured forwarding policy.
    """

    def __init__(
        self,
        sim: Simulator,
        transport: Transport,
        config: Optional[ProxyConfig] = None,
        stats: Optional[RunStats] = None,
        recorder: Optional[TraceRecorder] = None,
        auditor: Optional[Auditor] = None,
    ) -> None:
        self._sim = sim
        self._transport = transport
        self._config = config or ProxyConfig()
        self._config.validate()
        self._stats = stats if stats is not None else RunStats()
        #: Observability hooks (:mod:`repro.obs`): a bounded structured
        #: trace recorder and a sampled invariant auditor. Both default
        #: to None, in which case every instrumented site reduces to a
        #: single ``is not None`` check.
        self._recorder = recorder
        self._auditor = auditor
        self._states: Dict[TopicId, TopicState] = {}
        self._buffer = BufferPrefetcher(self._config.policy)
        #: RATE-policy credit shared by classic ``add_topic`` bindings;
        #: fleet bindings (``add_binding``) each get their own.
        self._rate = RatePrefetcher(self._config.policy)
        self._in_read = False
        #: Crash/restart bookkeeping (fault injection). While crashed
        #: the proxy drops arrivals, serves empty reads, and arms no
        #: timers; :meth:`restart` rebuilds volatile state from the
        #: durable history/forwarded sets.
        self._crashed = False
        self._crashed_at = 0.0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    @property
    def stats(self) -> RunStats:
        return self._stats

    @property
    def policy(self) -> PolicyConfig:
        return self._config.policy

    @property
    def retracted_count(self) -> int:
        """Retraction-dedup entries currently held (GC-bounded)."""
        return sum(len(state.retracted) for state in self._states.values())

    def add_topic(
        self,
        topic: TopicId,
        topic_type: TopicType = TopicType.ON_DEMAND,
        rank_threshold: float = 0.0,
        delay_tracker: Optional[DelayTracker] = None,
        schedule: Optional[DeliverySchedule] = None,
    ) -> TopicState:
        """Register a topic this proxy relays for its device.

        ``schedule`` attaches §2.2 delivery refinements: quiet hours and
        a daily push cap (enforced on proactive pushes of on-line
        topics) and an urgent-interrupt threshold (notifications at or
        above it are pushed immediately even on an on-demand topic).
        """
        return self._register(
            topic,
            topic_type=topic_type,
            rank_threshold=rank_threshold,
            schedule=schedule,
            transport=self._transport,
            stats=self._stats,
            rate=self._rate,
            tracker=delay_tracker or DelayTracker(),
        )

    def add_binding(
        self,
        topic: TopicId,
        *,
        transport: Transport,
        stats: RunStats,
        topic_type: TopicType = TopicType.ON_DEMAND,
        rank_threshold: float = 0.0,
        delay_tracker: Optional[DelayTracker] = None,
        schedule: Optional[DeliverySchedule] = None,
    ) -> TopicState:
        """Register a (device, topic) binding with its own machinery.

        Fleet mode: one proxy serves thousands of devices, each reached
        over its own last-hop link and accounted in its own
        :class:`RunStats`. Every binding also gets a private RATE credit
        line and delay tracker, so one device's behaviour never bleeds
        into another's adaptive knobs. A binding registered this way
        behaves exactly like a one-topic classic proxy whose
        transport/stats happen to be the ones supplied here.
        """
        policy = self._config.policy
        # The credit line is only ever consulted under the RATE kind
        # (observe_arrival/earn); any other policy shares the proxy's
        # inert instance instead of paying one allocation per binding.
        rate = (
            RatePrefetcher(policy)
            if policy.kind is PolicyKind.RATE
            else self._rate
        )
        return self._register(
            topic,
            topic_type=topic_type,
            rank_threshold=rank_threshold,
            schedule=schedule,
            transport=transport,
            stats=stats,
            rate=rate,
            tracker=delay_tracker or DelayTracker(),
        )

    def _register(
        self,
        topic: TopicId,
        *,
        topic_type: TopicType,
        rank_threshold: float,
        schedule: Optional[DeliverySchedule],
        transport: Transport,
        stats: RunStats,
        rate: RatePrefetcher,
        tracker: DelayTracker,
    ) -> TopicState:
        if topic in self._states:
            raise ConfigurationError(f"topic {topic!r} already registered at proxy")
        if schedule is not None:
            schedule.validate()
        policy = self._config.policy
        state = TopicState(
            topic=topic,
            topic_type=topic_type,
            rank_threshold=rank_threshold,
            ma_window=policy.ma_window,
            schedule=schedule,
        )
        state.transport = transport
        state.stats = stats
        state.rate = rate
        state.tracker = tracker
        state.expiration_threshold = (
            policy.initial_expiration_threshold
            if policy.expiration_threshold is None
            else policy.expiration_threshold
        )
        state.delay = 0.0 if policy.delay is None else policy.delay
        state.prefetch_limit = self._buffer.effective_limit(state)
        self._states[topic] = state
        return state

    def topic_state(self, topic: TopicId) -> TopicState:
        try:
            return self._states[topic]
        except KeyError:
            raise ProxyError(f"topic {topic!r} is not registered at this proxy") from None

    @property
    def topics(self) -> List[TopicId]:
        return list(self._states)

    # ------------------------------------------------------------------
    # NOTIFICATION(event)
    # ------------------------------------------------------------------
    def on_notification(self, notification: Notification) -> None:
        """Handle a new outside event or a rank-change announcement."""
        if self._crashed:
            # The proxy process is down; the wide-area substrate has no
            # last-hop persistence, so the announcement is simply lost.
            self._stats.lost_in_crash += 1
            return
        state = self.topic_state(notification.topic)
        if state.crashed:
            # Only this binding's worker is down (fleet fault mode).
            state.stats.lost_in_crash += 1
            return
        existing = state.history.get(notification.event_id)
        if existing is not None:
            state.stats.rank_changes += 1
            self._handle_rank_change(state, existing, notification)
        else:
            state.stats.arrivals += 1
            self._handle_new_event(state, notification)
        self.try_forwarding(state)
        if self._auditor is not None:
            self._auditor.maybe_audit(self._sim, state)

    def _handle_rank_change(
        self, state: TopicState, existing: Notification, update: Notification
    ) -> None:
        """The pseudo-code's first branch: the rank of a known event moved."""
        tracker = state.tracker
        old_rank = existing.rank
        if update.rank < existing.rank:
            tracker.record_drop(self._sim.now - existing.published_at)
        existing.rank = update.rank

        if update.rank < state.rank_threshold:
            # "if rank has been lowered below the threshold"
            outcome = "dropped"
            was_queued = state.remove_everywhere(existing.event_id)
            delay_handle = state.delay_handles.pop(existing.event_id, None)
            if delay_handle is not None:
                delay_handle.cancel()
                was_queued = True
            if existing.event_id in state.forwarded:
                # "tell client of rank drop"
                outcome = "retracted"
                if existing.event_id not in state.retracted:
                    state.retracted.add(existing.event_id)
                    state.pending_retractions.append(existing.event_id)
            elif was_queued:
                # "don't bother client"
                state.stats.dropped_before_forward += 1
        else:
            # Boost or within-threshold adjustment: re-key the event in
            # whichever queue holds it so ranked selection stays correct.
            outcome = "reordered"
            for queue in (state.outgoing, state.prefetch, state.holding):
                queue.reorder(existing)
        if self._recorder is not None:
            self._recorder.rank_change(
                self._sim.now, state.topic, existing.event_id,
                old_rank, update.rank, outcome,
            )

    def _handle_new_event(self, state: TopicState, notification: Notification) -> None:
        """The pseudo-code's main branch: a genuinely new notification."""
        if notification.rank < state.rank_threshold:
            state.stats.filtered += 1
            return
        if notification.is_expired(self._sim.now):
            # Dead on arrival (possible after wide-area routing latency).
            state.stats.expired_at_proxy += 1
            if self._recorder is not None:
                self._recorder.expire_at_proxy(
                    self._sim.now, state.topic, notification.event_id, "arrival"
                )
            return
        state.stats.accepted += 1
        state.history[notification.event_id] = notification
        tracker = state.tracker
        tracker.record_publication()

        policy = self._config.policy
        online = (
            state.topic_type is TopicType.ONLINE or policy.kind is PolicyKind.ONLINE
        )
        if online:
            # "send to client ASAP"
            state.outgoing.add(notification)
            if notification.expires_at is not None:
                self._schedule_expiration(state, notification)
            return

        # On-demand path.
        lifetime = notification.remaining_lifetime(self._sim.now)
        if lifetime is not None:
            state.exp_times.push(notification.lifetime or lifetime)
            self._schedule_expiration(state, notification)
        if state.schedule is not None and state.schedule.is_urgent(notification.rank):
            # "an on-demand topic interrupts (e.g. a tornado warning)".
            state.outgoing.add(notification)
        elif lifetime is not None and lifetime < state.expiration_threshold:
            # Expires too soon to be worth prefetching.
            state.holding.add(notification)
        elif state.delay > 0:
            # Rank-instability delay stage (§3.4).
            handle = self._sim.schedule(state.delay, self._delay_timeout, state, notification)
            state.delay_handles[notification.event_id] = handle
        else:
            state.prefetch.add(notification)

        # "topic.delay ← delay_function(topic.history)"
        if policy.delay is None:
            state.delay = tracker.current_delay()

        if policy.kind is PolicyKind.RATE:
            state.rate.observe_arrival(self._sim.now)
            for _ in range(state.rate.earn(state)):
                event = state.prefetch.pop_highest()
                if event is None:
                    break
                state.outgoing.add(event)

    # ------------------------------------------------------------------
    # Batched fast-path entries (fleet dispatch; repro.fleet.batch)
    # ------------------------------------------------------------------
    def notify_batch(
        self,
        state: TopicState,
        notification: Notification,
        up: bool,
        room: bool,
        online: bool,
        track: bool = True,
    ) -> bool:
        """Fused NOTIFICATION fast path for batched fleet dispatch.

        Replicates :meth:`on_notification` for a *live, genuinely new*
        arrival under the dispatcher's guarantees: proxy and binding not
        crashed, rank at or above the threshold, not expired at arrival,
        no recorder/auditor attached, no delivery schedule, the delay
        stage inactive (fixed zero, or adaptive with no recorded drops),
        a non-RATE policy, and — while the link is up — an empty
        outgoing queue and no pending retractions. ``up`` and ``room``
        mirror the caller's columnar link status and prefetch-budget
        check; ``room`` implies the prefetch queue is empty (the
        dispatcher's standing invariant), which is re-checked cheaply
        here. Skipped no-ops relative to the scalar chain: the
        ``state.delay`` refresh (tracker has no drops), the
        ``prefetch_limit`` recompute (``old_reads`` unchanged since its
        last write), and the schedule-then-cancel expiration-timer pair
        on immediate forwards. ``track=False`` additionally skips the
        durable-history insert and the delay-tracker publication count;
        both exist solely for rank changes (crash rebuilds read history
        too, but imply a fault plan and hence a never-fused binding), so
        the caller may clear it only when its workload carries none.
        Returns True iff the notification was forwarded to the device
        (the client queue grew by one).
        """
        stats = state.stats
        stats.arrivals += 1
        stats.accepted += 1
        if track:
            state.history[notification.event_id] = notification
            state.tracker.record_publication()
        expires_at = notification.expires_at
        if online:
            # "send to client ASAP" — no volume budget applies.
            if up:
                self._forward_batch(state, notification)
                return True
            state.outgoing.add(notification)
            if expires_at is not None:
                self._schedule_expiration(state, notification)
            return False
        if expires_at is None:
            if up and room and not state.prefetch:
                self._forward_batch(state, notification)
                return True
            state.prefetch.add(notification)
            return False
        now = self._sim.now
        state.exp_times.push(expires_at - notification.published_at)
        if expires_at - now < state.expiration_threshold:
            # Expires too soon to be worth prefetching.
            self._schedule_expiration(state, notification)
            state.holding.add(notification)
            return False
        if up and room and not state.prefetch:
            self._forward_batch(state, notification)
            return True
        self._schedule_expiration(state, notification)
        state.prefetch.add(notification)
        return False

    def read_batch(self, state: TopicState, n: int, queue_size: int) -> None:
        """Fused READ fast path for batched fleet dispatch.

        Replicates :meth:`on_read` when all three proxy queues are empty
        (the dispatcher's ``proxy_queued`` column is a conservative
        upper bound, so a zero there proves it): pruning, candidate
        selection, and forwarding all reduce to no-ops, leaving the
        moving-average bookkeeping, the client queue-size sync, and the
        ``prefetch_limit`` recompute — which must run here because
        ``old_reads`` just moved.
        """
        policy = self._config.policy
        state.stats.read_requests += 1
        state.old_reads.push(float(n))
        state.old_times.push(self._sim.now)
        if policy.expiration_threshold is None:
            state.expiration_threshold = state.old_times.value_or(
                policy.initial_expiration_threshold
            )
        state.queue_size = queue_size
        state.prefetch_limit = self._buffer.effective_limit(state)

    def _forward_batch(self, state: TopicState, event: Notification) -> None:
        """:meth:`_do_forward` minus the scalar path's no-ops: the mode
        is always PUSHED (never inside a READ), no recorder fires, and
        no expiration handle exists to cancel (the fused arrival path
        never armed one before an immediate forward)."""
        state.transport.deliver_batch(event)
        state.queue_size += 1
        event_id = event.event_id
        state.forwarded.add(event_id)
        stats = state.stats
        stats.forwarded_ids.add(event_id)
        stats.bytes_sent += event.size_bytes
        stats.pushed += 1

    def _schedule_expiration(self, state: TopicState, notification: Notification) -> None:
        fire_at = max(self._sim.now, notification.expires_at or self._sim.now)
        handle = self._sim.schedule_at(
            fire_at, self._expiration_timeout, state, notification
        )
        state.expiration_handles[notification.event_id] = handle

    # ------------------------------------------------------------------
    # READ(N, queue_size, client_events)
    # ------------------------------------------------------------------
    def on_read(
        self,
        topic: TopicId,
        n: int,
        queue_size: int,
        client_events: Sequence[Tuple[EventId, float]] = (),
    ) -> ReadResponse:
        """Serve a user read: ship "better" data than the client holds.

        ``client_events`` carries up to N (event id, rank) pairs for the
        highest-ranked events already on the device — "with effective
        prefetching this set may be better than anything available in
        queues on the server, making any transfer unnecessary".
        """
        state = self.topic_state(topic)
        if self._crashed or state.crashed:
            # The device's READ request times out against a dead proxy;
            # it falls back to its local queue, exactly like an outage.
            return ReadResponse(sent=(), candidates=0)
        if state.network is not NetworkStatus.UP:
            raise ProxyError("READ reached the proxy while the link is down")
        if n < 0:
            raise ProxyError(f"READ with negative N: {n}")
        now = self._sim.now
        state.stats.read_requests += 1
        policy = self._config.policy

        # Bookkeeping that drives the adaptive knobs.
        state.old_reads.push(float(n))
        state.old_times.push(now)
        if policy.expiration_threshold is None:
            state.expiration_threshold = state.old_times.value_or(
                policy.initial_expiration_threshold
            )
        state.queue_size = queue_size

        # Expired notifications still sitting in the queues (e.g. a read
        # arriving on the expiry timestamp before the timer fires) are
        # pruned and accounted here, not merely filtered out of ``best``:
        # leaving them queued would let them crowd out live candidates
        # and escape the waste accounting.
        for queue in (state.outgoing, state.prefetch, state.holding):
            for stale in queue.prune_expired(now):
                state.stats.expired_at_proxy += 1
                self._forget_event(state, stale.event_id)
                if self._recorder is not None:
                    self._recorder.expire_at_proxy(
                        now, state.topic, stale.event_id, "read"
                    )

        # "best ← get_highest_ranked(N, outgoing ∪ prefetch ∪ holding)"
        best = highest_ranked(n, state.outgoing, state.prefetch, state.holding)
        candidates = len(best)

        # "difference ← get_highest_ranked(N, best ∪ client_events) \ client_events"
        # On a rank tie the client copy wins the slot (marker 0 sorts
        # first), so an equally-ranked notification the device already
        # holds is never re-sent over the last hop.
        client_ranks = [rank for _eid, rank in client_events]
        merged: List[Tuple[float, int, Optional[Notification]]] = []
        for rank in client_ranks:
            merged.append((rank, 0, None))  # prefer keeping client copies
        for item in best:
            merged.append((item.rank, 1, item))
        merged.sort(key=lambda entry: (-entry[0], entry[1]))
        difference = [
            entry[2] for entry in merged[:n] if entry[2] is not None
        ]

        for item in difference:
            state.remove_everywhere(item.event_id)
            state.outgoing.add(item)

        self._in_read = True
        try:
            self.try_forwarding(state)
        finally:
            self._in_read = False
        if self._recorder is not None:
            self._recorder.read_exchange(
                now, state.topic, n, candidates, len(difference), queue_size
            )
        if self._auditor is not None:
            self._auditor.maybe_audit(self._sim, state)
        return ReadResponse(sent=tuple(difference), candidates=candidates)

    def on_queue_report(self, topic: TopicId, queue_size: int) -> None:
        """Accept an out-of-band client queue-occupancy report.

        Devices announce themselves when the link returns (that is how
        the proxy learns the link is usable) and piggyback their queue
        occupancy; without this, the proxy's ``queue_size`` estimate can
        only be corrected by READ exchanges and goes stale across
        outages, starving the prefetch buffer.
        """
        if queue_size < 0:
            raise ProxyError(f"queue report with negative size: {queue_size}")
        if self._crashed:
            return
        state = self.topic_state(topic)
        if state.crashed:
            return
        state.queue_size = queue_size

    def on_read_report(
        self, topic: TopicId, reads: Sequence[Tuple[float, int]]
    ) -> None:
        """Accept a log of reads the device performed while offline.

        The adaptive prefetch limit and expiration threshold are moving
        averages over *user reads*; reads during outages never produce a
        READ exchange, so without this report the proxy would estimate
        the read interval from up-reads only and grossly overestimate it
        on mostly-disconnected links. The device piggybacks the log
        (a few bytes per read) on its reconnection announcement.

        Report timestamps are merged monotonically: the log is sorted,
        and entries that predate the newest timestamp already recorded
        (e.g. when the reconnection READ was processed before the
        report arrived) update the read-size average but are skipped by
        the interval average, whose window already covers that span. A
        reordered device log must never kill the run.
        """
        state = self.topic_state(topic)
        policy = self._config.policy
        for _time, n in reads:
            if n < 0:
                raise ProxyError(f"read report with negative N: {n}")
        if self._crashed or state.crashed:
            return
        for time, n in sorted(reads, key=lambda entry: entry[0]):
            state.old_reads.push(float(n))
            last = state.old_times.last
            if last is None or time >= last:
                state.old_times.push(time)
        if reads and policy.expiration_threshold is None:
            state.expiration_threshold = state.old_times.value_or(
                policy.initial_expiration_threshold
            )

    # ------------------------------------------------------------------
    # NETWORK(status)
    # ------------------------------------------------------------------
    def on_network(self, status: NetworkStatus) -> None:
        """Handle a last-hop link transition (all bindings at once)."""
        for state in self._states.values():
            state.network = status
        if self._crashed:
            # Track the status (restart must see the current link state)
            # but do nothing with it while the process is down.
            return
        if status is NetworkStatus.UP:
            for state in self._states.values():
                self.try_forwarding(state)
        if self._auditor is not None:
            for state in self._states.values():
                self._auditor.maybe_audit(self._sim, state)

    def on_topic_network(self, topic: TopicId, status: NetworkStatus) -> None:
        """Handle a link transition on one binding's last hop.

        Fleet mode: each device has its own link with its own outage
        profile, so transitions arrive per binding rather than
        proxy-wide. Semantics match :meth:`on_network` restricted to
        one topic (status is tracked even while crashed; forwarding
        resumes only on UP; the auditor sees both edges).
        """
        state = self.topic_state(topic)
        state.network = status
        if self._crashed or state.crashed:
            return
        if status is NetworkStatus.UP:
            self.try_forwarding(state)
        if self._auditor is not None:
            self._auditor.maybe_audit(self._sim, state)

    # ------------------------------------------------------------------
    # try_forwarding()
    # ------------------------------------------------------------------
    def try_forwarding(self, state: TopicState) -> None:
        """Flush the outgoing queue, then prefetch into spare client room."""
        if self._crashed or state.crashed or state.network is not NetworkStatus.UP:
            return
        now = self._sim.now

        # Rank-drop retractions ride the same link as soon as it is up,
        # in the order the drops arrived (FIFO).
        while state.pending_retractions:
            event_id = state.pending_retractions.pop(0)
            state.transport.retract(event_id)
            state.stats.retractions_sent += 1
            if self._recorder is not None:
                self._recorder.retract(now, state.topic, event_id)

        # "first empty the outgoing queue"
        while True:
            event = state.outgoing.pop_highest()
            if event is None:
                break
            if event.is_expired(now):
                state.stats.expired_at_proxy += 1
                self._forget_event(state, event.event_id)
                if self._recorder is not None:
                    self._recorder.expire_at_proxy(
                        now, state.topic, event.event_id, "outgoing"
                    )
                continue
            if not self._in_read and not self._push_allowed(state, event):
                if state.quiet_wakeup is not None:
                    break  # quiet window: outgoing resumes at its end
                continue  # budget exhausted: event moved to prefetch
            self._do_forward(state, event)

        # "then see if anything should be prefetched"
        state.prefetch_limit = self._buffer.effective_limit(state)
        while state.queue_size < state.prefetch_limit and state.prefetch:
            if (
                state.topic_type is TopicType.ONLINE
                and not self._in_read
                and self._defer_for_quiet(state)
            ):
                # On an on-line topic a prefetch push still displays;
                # hold it until the quiet window ends.
                break
            event = state.prefetch.pop_highest()
            if event is None:
                break
            if event.is_expired(now):
                state.stats.expired_at_proxy += 1
                self._forget_event(state, event.event_id)
                if self._recorder is not None:
                    self._recorder.expire_at_proxy(
                        now, state.topic, event.event_id, "prefetch"
                    )
                continue
            if (
                state.schedule is not None
                and state.schedule.max_pushes_per_day is not None
                and not state.push_budget.try_spend(now)
            ):
                state.prefetch.add(event)
                if self._recorder is not None:
                    self._recorder.budget_exhaust(now, state.topic, event.event_id)
                break  # today's push budget is spent
            self._do_forward(state, event)

    def _defer_for_quiet(self, state: TopicState) -> bool:
        """If the topic is inside a quiet window, arm the wake-up and
        return True."""
        schedule = state.schedule
        if schedule is None or schedule.quiet_hours is None:
            return False
        quiet_end = schedule.quiet_hours.quiet_end(self._sim.now)
        if quiet_end is None:
            return False
        if state.quiet_wakeup is None or state.quiet_wakeup.cancelled:
            state.quiet_wakeup = self._sim.schedule_at(
                quiet_end, self._quiet_timeout, state
            )
        if self._recorder is not None:
            self._recorder.quiet_defer(self._sim.now, state.topic, quiet_end)
        return True

    def _push_allowed(self, state: TopicState, event: Notification) -> bool:
        """Apply the §2.2 schedule to one proactive push from outgoing.

        Returns True if the event may be forwarded now. Otherwise the
        event has been re-queued appropriately: back into outgoing with
        a wake-up at the end of the quiet window, or into the prefetch
        queue when today's push budget is exhausted. Urgent events
        always pass.
        """
        schedule = state.schedule
        if schedule is None or schedule.is_urgent(event.rank):
            return True
        if self._defer_for_quiet(state):
            state.outgoing.add(event)
            return False
        if not state.push_budget.try_spend(self._sim.now):
            state.prefetch.add(event)
            if self._recorder is not None:
                self._recorder.budget_exhaust(
                    self._sim.now, state.topic, event.event_id
                )
            return False
        return True

    def _quiet_timeout(self, state: TopicState) -> None:
        """End of a quiet window: resume deferred pushes."""
        state.quiet_wakeup = None
        self.try_forwarding(state)
        if self._auditor is not None:
            self._auditor.maybe_audit(self._sim, state)

    def _do_forward(self, state: TopicState, event: Notification) -> None:
        """``do_forward(event)`` — ship one notification downlink."""
        mode = DeliveryMode.PULLED if self._in_read else DeliveryMode.PUSHED
        state.transport.deliver(event, mode)
        state.queue_size += 1
        state.forwarded.add(event.event_id)
        state.stats.record_forward(event.event_id, event.size_bytes, mode)
        if self._recorder is not None:
            self._recorder.forward(
                self._sim.now, state.topic, event.event_id, mode.name,
                state.queue_size,
            )
        # The device owns expiry from here on.
        handle = state.expiration_handles.pop(event.event_id, None)
        if handle is not None:
            handle.cancel()

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _expiration_timeout(self, state: TopicState, event: Notification) -> None:
        """``expiration_timeout(event)`` — remove from all queues."""
        state.expiration_handles.pop(event.event_id, None)
        removed = state.remove_everywhere(event.event_id)
        delay_handle = state.delay_handles.pop(event.event_id, None)
        if delay_handle is not None:
            delay_handle.cancel()
            removed = True
        if removed:
            state.stats.expired_at_proxy += 1
            if self._recorder is not None:
                self._recorder.expire_at_proxy(
                    self._sim.now, state.topic, event.event_id, "timer"
                )
        # History is retained so late rank changes still match; the GC
        # horizon (collect_garbage) reclaims it eventually.
        if self._auditor is not None:
            self._auditor.maybe_audit(self._sim, state)

    def _delay_timeout(self, state: TopicState, event: Notification) -> None:
        """``delay_timeout(event)`` — after the delay, allow prefetching."""
        state.delay_handles.pop(event.event_id, None)
        if event.is_expired(self._sim.now):
            return
        if event.rank < state.rank_threshold:
            return  # demoted while delayed; already accounted
        state.prefetch.add(event)
        self.try_forwarding(state)
        if self._auditor is not None:
            self._auditor.maybe_audit(self._sim, state)

    def _forget_event(self, state: TopicState, event_id: EventId) -> None:
        state.cancel_timers(event_id)

    # ------------------------------------------------------------------
    # Crash / restart (fault injection)
    # ------------------------------------------------------------------
    @property
    def crashed(self) -> bool:
        """True while the proxy process is down (between crash and restart)."""
        return self._crashed

    def crash(self, restart_delay: float = 0.0) -> None:
        """Simulate a proxy process crash.

        All timers (expirations, delay stage, quiet wake-ups) and
        in-flight volatile state (pending retractions) are torn down;
        only the durable event history and forwarded set survive —
        exactly the data :meth:`collect_garbage` is contracted to
        retain. With ``restart_delay`` > 0 the proxy stays down for that
        long (arrivals are lost, reads come back empty) before
        :meth:`restart` rebuilds it; with 0 it restarts immediately.
        """
        if self._crashed:
            raise ProxyError("proxy crashed while already down")
        if restart_delay < 0:
            raise ConfigurationError(
                f"restart_delay must be non-negative, got {restart_delay}"
            )
        self._crashed = True
        self._crashed_at = self._sim.now
        self._stats.proxy_crashes += 1
        for state in self._states.values():
            self._teardown_volatile(state)
        if self._recorder is not None:
            self._recorder.crash(self._sim.now)
        if restart_delay > 0:
            self._sim.schedule(restart_delay, self.restart)
        else:
            self.restart()

    def crash_restart(self, restart_delay: float = 0.0) -> None:
        """Crash now unless already down (the fault plan's crash hook;
        a crash event landing inside a pending restart window is
        absorbed by the outage already in progress)."""
        if self._crashed:
            return
        self.crash(restart_delay)

    def restart(self) -> None:
        """Rebuild the proxy's volatile state after a crash.

        Each topic gets a fresh :class:`~repro.proxy.state.TopicState`
        seeded from the retained history and forwarded set: every
        retained event that is unforwarded, unexpired, and still above
        the rank threshold is re-classified exactly like a new arrival
        (minus the rank-instability delay stage, whose tracker died with
        the process) and its expiration timer re-armed. Moving averages,
        the client queue-size estimate, the push budget, and the
        retraction dedup set restart cold — the device's reconnection
        reports and subsequent READs re-teach them.
        """
        if not self._crashed:
            raise ProxyError("restart called on a proxy that is not down")
        now = self._sim.now
        requeued = 0
        for old in list(self._states.values()):
            _state, count = self._rebuild_state(old)
            requeued += count
        self._crashed = False
        downtime = now - self._crashed_at
        self._stats.crash_downtime += downtime
        if self._recorder is not None:
            self._recorder.recover(now, downtime, requeued)
        for state in self._states.values():
            self.try_forwarding(state)
            if self._auditor is not None:
                self._auditor.maybe_audit(self._sim, state)

    # -- per-binding fail-stop (fleet fault injection) ------------------
    def crash_topic(self, topic: TopicId, restart_delay: float = 0.0) -> None:
        """Crash one binding's worker while the rest of the fleet runs.

        Semantics mirror :meth:`crash` scoped to a single binding: its
        timers and in-flight volatile state are torn down, arrivals for
        the topic are lost and its reads come back empty until
        :meth:`restart_topic` rebuilds it from the durable history.
        """
        state = self.topic_state(topic)
        if state.crashed:
            raise ProxyError("proxy crashed while already down")
        if restart_delay < 0:
            raise ConfigurationError(
                f"restart_delay must be non-negative, got {restart_delay}"
            )
        state.crashed = True
        state.crashed_at = self._sim.now
        state.stats.proxy_crashes += 1
        self._teardown_volatile(state)
        if self._recorder is not None:
            self._recorder.crash(self._sim.now)
        if restart_delay > 0:
            self._sim.schedule(restart_delay, self.restart_topic, topic)
        else:
            self.restart_topic(topic)

    def crash_restart_topic(self, topic: TopicId, restart_delay: float = 0.0) -> None:
        """Per-binding :meth:`crash_restart`: absorbed if already down."""
        if self.topic_state(topic).crashed:
            return
        self.crash_topic(topic, restart_delay)

    def restart_topic(self, topic: TopicId) -> None:
        """Rebuild one binding's volatile state after :meth:`crash_topic`."""
        old = self.topic_state(topic)
        if not old.crashed:
            raise ProxyError("restart called on a proxy that is not down")
        now = self._sim.now
        state, requeued = self._rebuild_state(old)
        state.stats.crash_downtime += now - old.crashed_at
        if self._recorder is not None:
            self._recorder.recover(now, now - old.crashed_at, requeued)
        self.try_forwarding(state)
        if self._auditor is not None:
            self._auditor.maybe_audit(self._sim, state)

    def _teardown_volatile(self, state: TopicState) -> None:
        """Cancel a binding's timers and drop its in-flight state."""
        for handle in state.expiration_handles.values():
            handle.cancel()
        state.expiration_handles.clear()
        for handle in state.delay_handles.values():
            handle.cancel()
        state.delay_handles.clear()
        if state.quiet_wakeup is not None:
            state.quiet_wakeup.cancel()
            state.quiet_wakeup = None
        state.pending_retractions.clear()

    def _rebuild_state(self, old: TopicState) -> Tuple[TopicState, int]:
        """Replace one binding's state from its durable history.

        Every retained event that is unforwarded, unexpired, and still
        above the rank threshold is re-classified exactly like a new
        arrival (minus the rank-instability delay stage, whose tracker
        died with the worker) and its expiration timer re-armed; history
        iterates in insertion (acceptance) order, so recovery re-enqueues
        deterministically. Returns the fresh state and requeue count.
        """
        policy = self._config.policy
        state = TopicState(
            topic=old.topic,
            topic_type=old.topic_type,
            rank_threshold=old.rank_threshold,
            ma_window=policy.ma_window,
            schedule=old.schedule,
        )
        state.transport = old.transport
        state.stats = old.stats
        state.rate = old.rate
        state.tracker = DelayTracker()
        state.expiration_threshold = (
            policy.initial_expiration_threshold
            if policy.expiration_threshold is None
            else policy.expiration_threshold
        )
        state.delay = 0.0 if policy.delay is None else policy.delay
        # Durable storage survives the crash: history + forwarded.
        state.history = old.history
        state.forwarded = old.forwarded
        state.network = old.network
        self._states[old.topic] = state
        requeued = 0
        now = self._sim.now
        online = (
            state.topic_type is TopicType.ONLINE
            or policy.kind is PolicyKind.ONLINE
        )
        for event in old.history.values():
            if event.event_id in state.forwarded:
                continue
            if event.rank < state.rank_threshold:
                continue
            if event.is_expired(now):
                continue
            requeued += 1
            lifetime = event.remaining_lifetime(now)
            if lifetime is not None:
                self._schedule_expiration(state, event)
            if online or (
                state.schedule is not None
                and state.schedule.is_urgent(event.rank)
            ):
                state.outgoing.add(event)
            elif lifetime is not None and lifetime < state.expiration_threshold:
                state.holding.add(event)
            else:
                state.prefetch.add(event)
        state.prefetch_limit = self._buffer.effective_limit(state)
        return state, requeued

    # ------------------------------------------------------------------
    # Garbage collection (the paper notes it omitted this)
    # ------------------------------------------------------------------
    def collect_garbage(self, history_horizon: Optional[float] = None) -> int:
        """Drop stale bookkeeping; returns entries reclaimed.

        See :func:`repro.proxy.gc.collect` for the scheduled variant.
        ``history_horizon`` prunes history entries older than the given
        number of seconds that are no longer queued anywhere.
        """
        if self._crashed:
            # History and the forwarded set are exactly what restart
            # rebuilds from; never prune them while the process is down.
            return 0
        reclaimed = 0
        now = self._sim.now
        for state in self._states.values():
            if state.crashed:
                # Same contract as the whole-proxy check, per binding.
                continue
            retracted = state.retracted
            for queue in (state.outgoing, state.prefetch, state.holding):
                # Queues self-compact on mutation past the same threshold
                # (RankedQueue.compact_if_stale); this sweep only mops up
                # queues that went idle right after heavy churn.
                reclaimed += queue.compact_if_stale()
            if history_horizon is not None:
                cutoff = now - history_horizon
                doomed = [
                    event_id
                    for event_id, event in state.history.items()
                    if event.published_at < cutoff and not state.in_any_queue(event_id)
                    and event_id not in state.delay_handles
                ]
                for event_id in doomed:
                    del state.history[event_id]
                    state.forwarded.discard(event_id)
                    # A drop-before-forward leaves its expiration timer
                    # armed; cancel it with the history entry or the
                    # handle map (and the engine heap) grow per-event
                    # forever on year-long runs.
                    handle = state.expiration_handles.pop(event_id, None)
                    if handle is not None:
                        handle.cancel()
                        reclaimed += 1
                    # Retraction bookkeeping is per-event too: once the
                    # history forgets the event, no late rank change can
                    # re-retract it, so its dedup entry is dead weight.
                    if event_id in retracted:
                        retracted.remove(event_id)
                        reclaimed += 1
                reclaimed += len(doomed)
        reclaimed += self._sim.drain_cancelled()
        return reclaimed
