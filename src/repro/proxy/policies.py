"""Forwarding-policy configuration.

The paper evaluates a spectrum of last-hop forwarding policies (§3.1):

* **on-line** — forward everything as soon as the network allows; the
  best possible quality of service and the loss baseline;
* **pure on-demand** — hold everything at the proxy until the user asks;
  zero waste by construction;
* **buffer-based prefetching** — keep at most ``prefetch_limit`` unread
  notifications on the device (§3.2, Figure 3);
* **rate-based prefetching** — forward a fraction of arrivals matching
  the consumption/production ratio (§3.2);
* **unified** — the Figure 7 algorithm: buffer-based with an adaptive
  limit, adaptive expiration threshold, and optional delay stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.types import PolicyKind


@dataclass(frozen=True)
class PolicyConfig:
    """Configuration of one forwarding policy.

    ``prefetch_limit`` — static buffer limit; ignored by kinds that do
    not buffer-prefetch. ``None`` selects the adaptive limit (moving
    average of read sizes × ``adaptive_limit_multiplier``).

    ``expiration_threshold`` — notifications expiring sooner than this
    (seconds) are held at the proxy instead of prefetched. ``0`` disables
    holding; ``None`` selects the adaptive threshold (moving average of
    the interval between reads).

    ``delay`` — rank-instability delay stage: notifications wait this
    long before becoming prefetchable. ``0`` disables the stage; ``None``
    selects the adaptive delay computed from observed rank-drop history.
    """

    kind: PolicyKind = PolicyKind.UNIFIED
    prefetch_limit: Optional[int] = None
    expiration_threshold: Optional[float] = None
    delay: Optional[float] = 0.0
    #: "It is safe to set the prefetch limit to twice that amount" (§3.2).
    adaptive_limit_multiplier: float = 2.0
    #: Prefetch limit used before any read has been observed.
    initial_prefetch_limit: int = 16
    #: Expiration threshold used before two reads have been observed
    #: (only with adaptive thresholds).
    initial_expiration_threshold: float = 0.0
    #: Forward fraction assumed by the rate-based prefetcher before it
    #: has observed enough arrivals and reads to estimate the true ratio.
    initial_rate_ratio: float = 1.0
    #: Window (observations) of the proxy's moving averages.
    ma_window: int = 10

    def validate(self) -> None:
        if self.prefetch_limit is not None and self.prefetch_limit < 0:
            raise ConfigurationError(
                f"prefetch_limit must be non-negative, got {self.prefetch_limit}"
            )
        if self.expiration_threshold is not None and self.expiration_threshold < 0:
            raise ConfigurationError(
                f"expiration_threshold must be non-negative, got {self.expiration_threshold}"
            )
        if self.delay is not None and self.delay < 0:
            raise ConfigurationError(f"delay must be non-negative, got {self.delay}")
        if self.adaptive_limit_multiplier <= 0:
            raise ConfigurationError(
                f"adaptive_limit_multiplier must be positive, "
                f"got {self.adaptive_limit_multiplier}"
            )
        if self.initial_prefetch_limit < 0:
            raise ConfigurationError(
                f"initial_prefetch_limit must be non-negative, "
                f"got {self.initial_prefetch_limit}"
            )
        if not 0.0 <= self.initial_rate_ratio <= 1.0:
            raise ConfigurationError(
                f"initial_rate_ratio must be within [0, 1], got {self.initial_rate_ratio}"
            )
        if self.ma_window < 1:
            raise ConfigurationError(f"ma_window must be at least 1, got {self.ma_window}")
        if self.kind is PolicyKind.BUFFER and self.prefetch_limit is None:
            raise ConfigurationError("buffer policy requires a static prefetch_limit")

    # ------------------------------------------------------------------
    # Constructors for the paper's policies
    # ------------------------------------------------------------------
    @classmethod
    def online(cls) -> "PolicyConfig":
        """Forward everything as soon as the network allows (baseline)."""
        return cls(kind=PolicyKind.ONLINE, prefetch_limit=0,
                   expiration_threshold=0.0, delay=0.0)

    @classmethod
    def on_demand(cls) -> "PolicyConfig":
        """Pure on-demand: nothing is pushed; reads pull the best data."""
        return cls(kind=PolicyKind.ON_DEMAND, prefetch_limit=0,
                   expiration_threshold=0.0, delay=0.0)

    @classmethod
    def buffer(
        cls,
        prefetch_limit: int,
        expiration_threshold: float = 0.0,
        delay: float = 0.0,
    ) -> "PolicyConfig":
        """Buffer-based prefetching with a static limit (§3.2)."""
        return cls(
            kind=PolicyKind.BUFFER,
            prefetch_limit=prefetch_limit,
            expiration_threshold=expiration_threshold,
            delay=delay,
        )

    @classmethod
    def rate(cls, initial_ratio: float = 1.0, ma_window: int = 10) -> "PolicyConfig":
        """Rate-based prefetching (§3.2)."""
        return cls(
            kind=PolicyKind.RATE,
            prefetch_limit=0,
            expiration_threshold=0.0,
            delay=0.0,
            initial_rate_ratio=initial_ratio,
            ma_window=ma_window,
        )

    @classmethod
    def unified(
        cls,
        expiration_threshold: Optional[float] = None,
        delay: Optional[float] = 0.0,
        initial_prefetch_limit: int = 16,
        ma_window: int = 10,
    ) -> "PolicyConfig":
        """The full Figure 7 algorithm with adaptive prefetch limit.

        Pass a number for ``expiration_threshold`` to pin it (as the
        Figure 6 sweep does); the default ``None`` adapts it to the
        moving average interval between reads.
        """
        return cls(
            kind=PolicyKind.UNIFIED,
            prefetch_limit=None,
            expiration_threshold=expiration_threshold,
            delay=delay,
            initial_prefetch_limit=initial_prefetch_limit,
            ma_window=ma_window,
        )

    def describe(self) -> str:
        """Short human-readable label for reports."""
        if self.kind is PolicyKind.BUFFER:
            return f"buffer(limit={self.prefetch_limit})"
        if self.kind is PolicyKind.UNIFIED:
            threshold = (
                "adaptive" if self.expiration_threshold is None
                else f"{self.expiration_threshold:g}s"
            )
            return f"unified(threshold={threshold})"
        return self.kind.value
