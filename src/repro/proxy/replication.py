"""Proxy replication (the paper's §4 future work).

"Also, to avoid making the proxy a single point of failure, we will
consider approaches to replicating it."

The scheme here is a classic hot standby with asynchronous log
shipping:

* both replicas receive the full NOTIFICATION stream from the routing
  substrate (each with its own message instances, since ranks mutate);
* the primary serves the device; every externally visible action —
  forward, retraction, READ bookkeeping — is shipped to the backup as a
  small sync record after ``replication_delay`` seconds;
* the backup applies sync records to keep its queues, forwarded set,
  and adaptive moving averages aligned, while its own downlink stays
  muted (it believes the network is down, so ``try_forwarding`` no-ops);
* on :meth:`ReplicatedProxy.fail_primary`, the backup takes over: it
  learns the real link status and immediately resumes forwarding from
  its reconstructed state.

Failover is at-least-once: records still in flight when the primary
dies are lost, so the backup may re-forward a handful of notifications
the device already holds. Deliveries and retractions are idempotent at
the device, so this costs duplicate transfers, never correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Optional, Sequence, Tuple

from repro.broker.message import Notification
from repro.errors import ProxyError, ReplicationError
from repro.metrics.accounting import RunStats
from repro.proxy.proxy import LastHopProxy, ProxyConfig, ReadResponse, Transport
from repro.sim.engine import Simulator
from repro.types import DeliveryMode, EventId, NetworkStatus, TopicId, TopicType


def _clone(notification: Notification) -> Notification:
    """Fresh instance for the backup; replicas must not share rank state."""
    return dc_replace(notification)


class _ShippingTransport:
    """Wraps the real downlink; ships a sync record per primary action."""

    def __init__(self, real: Transport, owner: "ReplicatedProxy") -> None:
        self._real = real
        self._owner = owner

    def deliver(self, notification: Notification, mode: DeliveryMode) -> None:
        self._real.deliver(notification, mode)
        self._owner._ship_forward(notification.topic, notification.event_id)

    def retract(self, event_id: EventId) -> None:
        self._real.retract(event_id)
        self._owner._ship_retraction(event_id)


class ReplicatedProxy:
    """A primary/backup pair behind the single-proxy interface.

    Drop-in for :class:`LastHopProxy` in the runner wiring: it exposes
    the same ``on_notification`` / ``on_read`` / ``on_network`` /
    ``on_queue_report`` / ``on_read_report`` surface and fans the inputs
    out to the replicas.
    """

    def __init__(
        self,
        sim: Simulator,
        transport: Transport,
        config: Optional[ProxyConfig] = None,
        stats: Optional[RunStats] = None,
        replication_delay: float = 0.050,
    ) -> None:
        if replication_delay < 0:
            raise ReplicationError(
                f"replication_delay must be non-negative, got {replication_delay}"
            )
        self._sim = sim
        self._stats = stats if stats is not None else RunStats()
        self._delay = replication_delay
        self._primary = LastHopProxy(
            sim, _ShippingTransport(transport, self), config, self._stats
        )
        self._backup = LastHopProxy(sim, transport, config, self._stats)
        self._primary_failed = False
        self._link_status = NetworkStatus.UP
        self.records_shipped = 0
        self.records_lost = 0
        self.failovers = 0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def active(self) -> LastHopProxy:
        """The replica currently serving the device."""
        return self._backup if self._primary_failed else self._primary

    @property
    def primary_failed(self) -> bool:
        return self._primary_failed

    def add_topic(self, topic: TopicId, **kwargs) -> None:
        """Register a topic at both replicas."""
        self._primary.add_topic(topic, **kwargs)
        self._backup.add_topic(topic, **kwargs)
        # The backup's downlink stays muted until takeover.
        self._backup.topic_state(topic).network = NetworkStatus.DOWN

    def topic_state(self, topic: TopicId):
        return self.active.topic_state(topic)

    @property
    def stats(self) -> RunStats:
        return self._stats

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def fail_primary(self) -> None:
        """Kill the primary; the backup takes over immediately.

        Sync records still in flight are lost (asynchronous shipping),
        so the backup may re-forward what the device already holds.
        """
        if self._primary_failed:
            raise ReplicationError("primary has already failed")
        self._primary_failed = True
        self.failovers += 1
        # The backup learns the real link status and resumes service.
        self._backup.on_network(self._link_status)

    # ------------------------------------------------------------------
    # Proxy interface (fans out to replicas)
    # ------------------------------------------------------------------
    def on_notification(self, notification: Notification) -> None:
        if not self._primary_failed:
            self._primary.on_notification(notification)
        self._backup.on_notification(_clone(notification))

    def on_read(
        self,
        topic: TopicId,
        n: int,
        queue_size: int,
        client_events: Sequence[Tuple[EventId, float]] = (),
    ) -> ReadResponse:
        response = self.active.on_read(topic, n, queue_size, client_events)
        if not self._primary_failed:
            self._ship_read(topic, self._sim.now, n, queue_size)
        return response

    def on_network(self, status: NetworkStatus) -> None:
        self._link_status = status
        self.active.on_network(status)

    def on_queue_report(self, topic: TopicId, queue_size: int) -> None:
        self.active.on_queue_report(topic, queue_size)
        if not self._primary_failed:
            # Cheap metadata: replicate synchronously.
            self._backup.on_queue_report(topic, queue_size)

    def on_read_report(self, topic: TopicId, reads: Sequence[Tuple[float, int]]) -> None:
        self.active.on_read_report(topic, reads)
        if not self._primary_failed:
            self._backup.on_read_report(topic, reads)

    def collect_garbage(self, history_horizon: Optional[float] = None) -> int:
        reclaimed = self._primary.collect_garbage(history_horizon)
        reclaimed += self._backup.collect_garbage(history_horizon)
        return reclaimed

    # ------------------------------------------------------------------
    # Log shipping (primary -> backup)
    # ------------------------------------------------------------------
    def _ship(self, apply, *args) -> None:
        self.records_shipped += 1
        if self._delay > 0:
            self._sim.schedule(self._delay, self._apply_record, apply, args)
        else:
            self._apply_record(apply, args)

    def _apply_record(self, apply, args) -> None:
        if self._primary_failed:
            self.records_lost += 1  # in flight when the primary died
            return
        apply(*args)

    def _ship_forward(self, topic: TopicId, event_id: EventId) -> None:
        self._ship(self._apply_forward, topic, event_id)

    def _ship_retraction(self, event_id: EventId) -> None:
        self._ship(self._apply_retraction, event_id)

    def _ship_read(self, topic: TopicId, time: float, n: int, queue_size: int) -> None:
        self._ship(self._apply_read, topic, time, n, queue_size)

    def _apply_forward(self, topic: TopicId, event_id: EventId) -> None:
        """Mirror one primary forward into the backup's state."""
        state = self._backup.topic_state(topic)
        state.remove_everywhere(event_id)
        state.cancel_timers(event_id)
        state.forwarded.add(event_id)
        state.queue_size += 1

    def _apply_retraction(self, event_id: EventId) -> None:
        """Mark a retraction as already delivered to the device."""
        for state in self._backup._states.values():
            state.retracted.add(event_id)
            if event_id in state.pending_retractions:
                state.pending_retractions.remove(event_id)

    def _apply_read(self, topic: TopicId, time: float, n: int, queue_size: int) -> None:
        """Mirror the READ bookkeeping that drives the adaptive knobs."""
        state = self._backup.topic_state(topic)
        state.old_reads.push(float(n))
        state.old_times.push(time)
        state.queue_size = queue_size
        policy = self._backup.policy
        if policy.expiration_threshold is None:
            state.expiration_threshold = state.old_times.value_or(
                policy.initial_expiration_threshold
            )
