"""Background garbage collection for the proxy.

The paper's pseudo-code deliberately omits "'garbage collection' that
would have to operate in the background as certain queues (e.g.
topic.history) grow without bounds". This module supplies it: a periodic
sweep that compacts lazy-deletion heaps, drains cancelled engine timers,
and prunes history entries past a horizon.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.proxy.proxy import LastHopProxy
from repro.sim.engine import Simulator
from repro.units import DAY, WEEK


@dataclass(frozen=True)
class GcConfig:
    """Sweep cadence and history horizon."""

    interval: float = DAY
    #: History entries older than this (and no longer queued) are pruned.
    #: A week comfortably exceeds any plausible rank-change window.
    history_horizon: float = WEEK

    def validate(self) -> None:
        if self.interval <= 0:
            raise ConfigurationError(f"gc interval must be positive, got {self.interval}")
        if self.history_horizon <= 0:
            raise ConfigurationError(
                f"history_horizon must be positive, got {self.history_horizon}"
            )


class ProxyGarbageCollector:
    """Periodically invokes :meth:`LastHopProxy.collect_garbage`."""

    def __init__(
        self, sim: Simulator, proxy: LastHopProxy, config: GcConfig = GcConfig()
    ) -> None:
        config.validate()
        self._sim = sim
        self._proxy = proxy
        self._config = config
        self._total_reclaimed = 0
        self._sweeps = 0
        self._handle = sim.schedule(config.interval, self._sweep)

    @property
    def total_reclaimed(self) -> int:
        """Entries reclaimed across all sweeps so far."""
        return self._total_reclaimed

    @property
    def sweeps(self) -> int:
        return self._sweeps

    def stop(self) -> None:
        """Cancel the periodic sweep."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _sweep(self) -> None:
        self._sweeps += 1
        self._total_reclaimed += self._proxy.collect_garbage(
            history_horizon=self._config.history_horizon
        )
        self._handle = self._sim.schedule(self._config.interval, self._sweep)


def collect(sim: Simulator, proxy: LastHopProxy, config: GcConfig = GcConfig()) -> ProxyGarbageCollector:
    """Attach a background garbage collector to a proxy."""
    return ProxyGarbageCollector(sim, proxy, config)
