"""Structural invariants of the proxy state, for tests and debugging.

The Figure 7 algorithm maintains several implicit invariants — an event
is in at most one queue, forwarded events are never queued, everything
queued is in the history, nothing queued is expired for longer than one
timestamp. :func:`check_topic_state` asserts them all; the property
suite calls it after randomized operation sequences, and it is cheap
enough to sprinkle into debugging sessions.
"""

from __future__ import annotations

from typing import List

from repro.proxy.state import TopicState


class InvariantViolation(AssertionError):
    """A structural invariant of the proxy state does not hold.

    When raised by the sampled audit mode (:mod:`repro.obs.audit`),
    ``violations`` holds the individual findings and ``trace_context``
    the trailing delivery-path records that led up to the failure.
    """

    violations: List[str] = []
    trace_context: tuple = ()


def check_topic_state(state: TopicState, now: float) -> List[str]:
    """Check all invariants; returns the violations (empty = healthy).

    Callers that want hard failure use :func:`assert_topic_state`.
    """
    violations: List[str] = []

    outgoing_ids = {m.event_id for m in state.outgoing}
    prefetch_ids = {m.event_id for m in state.prefetch}
    holding_ids = {m.event_id for m in state.holding}
    delayed_ids = set(state.delay_handles)

    # 1. An event sits in at most one place.
    groups = {
        "outgoing": outgoing_ids,
        "prefetch": prefetch_ids,
        "holding": holding_ids,
        "delay-stage": delayed_ids,
    }
    names = list(groups)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            overlap = groups[a] & groups[b]
            if overlap:
                violations.append(f"events {sorted(overlap)} in both {a} and {b}")

    # 2. Forwarded events are never queued or delayed.
    queued = outgoing_ids | prefetch_ids | holding_ids | delayed_ids
    ghosts = queued & state.forwarded
    if ghosts:
        violations.append(f"forwarded events still queued: {sorted(ghosts)}")

    # 3. Everything queued is known to the history.
    unknown = queued - set(state.history)
    if unknown:
        violations.append(f"queued events missing from history: {sorted(unknown)}")

    # 4. No queue retains an event past its expiry (the expiration
    #    timeout fires at the deadline, so equality is permitted).
    for name, queue in (
        ("outgoing", state.outgoing),
        ("prefetch", state.prefetch),
        ("holding", state.holding),
    ):
        stale = [m.event_id for m in queue if m.expires_at is not None
                 and m.expires_at < now]
        if stale:
            violations.append(f"{name} retains expired events: {sorted(stale)}")

    # 5. Ranks of queued events respect the subscription threshold.
    below = [
        m.event_id
        for queue in (state.outgoing, state.prefetch, state.holding)
        for m in queue
        if m.rank < state.rank_threshold
    ]
    if below:
        violations.append(
            f"events below rank threshold still queued: {sorted(below)}"
        )

    # 6. No live timer handle for a forgotten event: every pending
    #    expiration/delay timer must reference an event the history
    #    still knows, or the timer can never be reclaimed (and would
    #    fire against state that no longer exists).
    for name, handles in (
        ("expiration", state.expiration_handles),
        ("delay", state.delay_handles),
    ):
        forgotten = sorted(
            event_id
            for event_id, handle in handles.items()
            if not handle.cancelled and event_id not in state.history
        )
        if forgotten:
            violations.append(
                f"live {name} timers for events missing from history: {forgotten}"
            )

    # 7. Counters are sane.
    if state.queue_size < 0:
        violations.append(f"negative client queue estimate: {state.queue_size}")
    if state.prefetch_limit < 0:
        violations.append(f"negative prefetch limit: {state.prefetch_limit}")

    return violations


def assert_topic_state(state: TopicState, now: float) -> None:
    """Raise :class:`InvariantViolation` if any invariant fails."""
    violations = check_topic_state(state, now)
    if violations:
        raise InvariantViolation(
            f"topic {state.topic!r} violates invariants:\n  " + "\n  ".join(violations)
        )
