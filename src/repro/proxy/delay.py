"""The rank-instability delay stage (paper §3.4).

"We instead propose that if a topic sees rank reductions, all events may
be optionally delayed for a period of time long enough to separate the
wheat from the chaff. […] It is clear that this delay would be computed
based on the expiration history of past events, but finding the right
formula demands data from a deployed pub/sub system."

The paper leaves the formula open; we provide a reasonable one as the
default — a high percentile of recently observed publication-to-drop
delays, zero while no drops have been observed — plus the hook to plug
in any other formula.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

from repro.errors import ConfigurationError
from repro.units import DAY

#: Signature of a pluggable delay formula: observed drop delays -> delay.
DelayFunction = Callable[["DelayTracker"], float]


class DelayTracker:
    """Observes rank-drop history on a topic and recommends a delay.

    ``record_publication`` and ``record_drop`` are fed by the proxy;
    ``current_delay`` is the paper's ``delay_function(topic.history)``.
    """

    def __init__(
        self,
        window: int = 50,
        percentile: float = 0.95,
        max_delay: float = DAY,
        formula: Optional[DelayFunction] = None,
    ) -> None:
        if not 0.0 < percentile <= 1.0:
            raise ConfigurationError(f"percentile must be in (0, 1], got {percentile}")
        if max_delay < 0:
            raise ConfigurationError(f"max_delay must be non-negative, got {max_delay}")
        self._window = window
        self._percentile = percentile
        self._max_delay = max_delay
        self._formula = formula
        # List-backed ring (oldest at _drop_start once full): cheaper to
        # allocate than a deque, which matters with one tracker per
        # fleet binding.
        self._drop_delays: List[float] = []
        self._drop_start = 0
        self._publications = 0
        self._drops = 0

    @property
    def publications(self) -> int:
        """Accepted publications observed on the topic."""
        return self._publications

    @property
    def drops(self) -> int:
        """Rank reductions observed on the topic."""
        return self._drops

    @property
    def drop_fraction(self) -> float:
        """Observed fraction of publications later demoted."""
        if self._publications == 0:
            return 0.0
        return self._drops / self._publications

    def record_publication(self) -> None:
        self._publications += 1

    def record_drop(self, publication_to_drop_delay: float) -> None:
        """Record that a rank drop arrived ``delay`` seconds after its
        event was published."""
        self._drops += 1
        self._push_delay(max(0.0, publication_to_drop_delay))

    def _push_delay(self, delay: float) -> None:
        if len(self._drop_delays) == self._window:
            start = self._drop_start
            self._drop_delays[start] = delay
            self._drop_start = start + 1 if start + 1 < self._window else 0
        else:
            self._drop_delays.append(delay)

    def current_delay(self) -> float:
        """Recommended delay before events become prefetchable.

        Default formula: zero until a drop has been observed ("assuming
        that bad messages are detected quickly" there is no reason to
        delay a topic that never retracts); afterwards, the configured
        percentile of recent drop delays, capped at ``max_delay``.
        """
        if self._formula is not None:
            return min(self._max_delay, max(0.0, self._formula(self)))
        if not self._drop_delays:
            return 0.0
        ordered = sorted(self._drop_delays)
        # Nearest-rank percentile: ceil(p·n) − 1. The old int(p·n) was
        # biased high at small windows (p=0.5 over 2 samples picked the
        # max); nearest-rank makes p=0.5 the statistical median and
        # p=1.0 the max for every n.
        index = max(0, min(len(ordered) - 1,
                           math.ceil(self._percentile * len(ordered)) - 1))
        return min(self._max_delay, ordered[index])

    def merge(self, other: "DelayTracker") -> None:
        """Fold another tracker's history in after this one's.

        Publication/drop counts add exactly. The drop-delay window keeps
        the newest ``window`` delays of the concatenation (self's, then
        ``other``'s), so ``current_delay`` afterwards equals a single
        tracker that observed both histories in that order. Nearest-rank
        percentiles over the merged window are exact — the window stores
        raw delays, not a sketch — but which delays survive depends on
        the fold order; fold shards in a fixed order for determinism.
        """
        self._publications += other._publications
        self._drops += other._drops
        other_delays = other._drop_delays
        if other._drop_start:
            other_delays = (
                other_delays[other._drop_start :]
                + other_delays[: other._drop_start]
            )
        for delay in other_delays:
            self._push_delay(delay)

    def reset(self) -> None:
        self._drop_delays.clear()
        self._drop_start = 0
        self._publications = 0
        self._drops = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DelayTracker(drops={self._drops}/{self._publications}, "
            f"delay={self.current_delay():.0f}s)"
        )
