"""The volume-limiting last-hop proxy — the paper's core contribution.

The proxy sits between the wired pub/sub infrastructure and the mobile
device. It implements the unified prefetching algorithm of the paper's
Figure 7:

* three ranked queues per topic — *outgoing* (must be forwarded ASAP),
  *prefetch* (okay to push when the client has room), and *holding*
  (expires too soon to be worth prefetching);
* an adaptive **prefetch limit** — twice the moving average of the
  number of messages per user read (§3.2);
* an adaptive **expiration threshold** — the moving average of the
  interval between user reads (§3.3);
* an optional **delay stage** for topics whose publishers issue rank
  reductions (§3.4);
* the ``READ(N, queue_size, client_events)`` exchange, under which "a
  read is not a request for more data, but a request for better data if
  it exists" (§3.5).

Forwarding policies from the evaluation (on-line, pure on-demand,
buffer-based, rate-based, unified adaptive) are configured through
:class:`~repro.proxy.policies.PolicyConfig`.
"""

from repro.proxy.moving_average import IntervalAverage, MovingAverage
from repro.proxy.policies import PolicyConfig
from repro.proxy.proxy import LastHopProxy, ProxyConfig, ReadResponse
from repro.proxy.queues import RankedQueue

__all__ = [
    "IntervalAverage",
    "LastHopProxy",
    "MovingAverage",
    "PolicyConfig",
    "ProxyConfig",
    "RankedQueue",
    "ReadResponse",
]
