"""Ranked notification queues.

The paper's pseudo-code manipulates queues with set notation — union,
difference, and ``get_highest_ranked(N, …)``. :class:`RankedQueue`
provides exactly those operations efficiently: a lazy-deletion binary
heap ordered by (rank descending, arrival order ascending) plus an
id-keyed index for O(1) membership and removal, and a companion
expiration min-heap so pruning touches only members actually due.

Complexity of the READ hot path (M queued, N requested, E expired,
S stale lazy-deletion entries — bounded to O(M) by amortized
compaction):

* ``top_n`` / ``highest_ranked``: O(M) heap copy + O((N + S) log M)
  pops, instead of the full O(M log M) sort per call.
* ``prune_expired``: O((E + S) log M) — a no-op peek when nothing is
  due, instead of an O(M) scan per READ.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.broker.message import Notification
from repro.types import EventId


def _selection_key(notification: Notification) -> Tuple[float, float, EventId]:
    """Sort key for ranked selection: rank descending, then oldest
    first (publication time, then event id for full determinism)."""
    return (-notification.rank, notification.published_at, notification.event_id)


class RankedQueue:
    """A queue of notifications ordered by rank (highest first).

    Ties break oldest-first — by publication time, then event id — so
    two equally ranked notifications come out in publication order,
    matching a user reading equally important news oldest-first. The
    tie-break is explicit rather than insertion-order so it survives
    re-queues and holds across queue unions.
    """

    #: A heap holding more than ``2·len + _COMPACT_SLACK`` entries is
    #: mostly stale and gets rebuilt; rebuilding at that point costs
    #: O(M) against the Ω(M) lazy deletions that caused it, so the
    #: amortized overhead per mutation is O(1).
    _COMPACT_SLACK = 16

    def __init__(self, items: Iterable[Notification] = ()) -> None:
        #: heap of (-rank, published_at, event_id); stale entries are
        #: skipped. The entry *is* the selection key, so heap order,
        #: ``top_n`` order, and iteration order always agree — which
        #: also makes compaction semantically invisible.
        self._heap: List[Tuple[float, float, EventId]] = []
        #: min-heap of (expires_at, event_id) for the members that can
        #: expire; lazily pruned like ``_heap``.
        self._expiry: List[Tuple[float, EventId]] = []
        self._items: Dict[EventId, Notification] = {}
        for item in items:
            self.add(item)

    def add(self, notification: Notification) -> None:
        """Insert a notification; re-adding one already present updates
        its heap position (used after rank changes)."""
        self._items[notification.event_id] = notification
        heapq.heappush(
            self._heap,
            (-notification.rank, notification.published_at, notification.event_id),
        )
        if notification.expires_at is not None:
            heapq.heappush(self._expiry, (notification.expires_at, notification.event_id))
        self.compact_if_stale()

    def remove(self, event_id: EventId) -> Optional[Notification]:
        """Remove by id. Returns the notification or None if absent.

        The heap entry is left in place and skipped lazily when popped.
        """
        item = self._items.pop(event_id, None)
        if item is not None:
            self.compact_if_stale()
        return item

    def discard(self, notification: Notification) -> Optional[Notification]:
        """Set-notation convenience: ``queue \\ event``."""
        return self.remove(notification.event_id)

    def reorder(self, notification: Notification) -> None:
        """Re-key a member whose rank changed. No-op if absent."""
        if notification.event_id in self._items:
            self.add(notification)

    def pop_highest(self) -> Optional[Notification]:
        """Remove and return the highest-ranked notification, or None."""
        while self._heap:
            neg_rank, _published_at, event_id = heapq.heappop(self._heap)
            item = self._items.get(event_id)
            if item is None:
                continue  # removed or stale duplicate entry
            if -neg_rank != item.rank:
                continue  # stale entry from before a rank change
            del self._items[event_id]
            return item
        return None

    def peek_highest(self) -> Optional[Notification]:
        """Return (without removing) the highest-ranked notification."""
        while self._heap:
            neg_rank, _published_at, event_id = self._heap[0]
            item = self._items.get(event_id)
            if item is None or -neg_rank != item.rank:
                heapq.heappop(self._heap)
                continue
            return item
        return None

    def top_n(self, n: int) -> List[Notification]:
        """The ``get_highest_ranked(N, queue)`` of the paper's pseudo-code
        — the N highest-ranked members, without removal.

        Traverses a copy of the live heap, so the cost is an O(M) list
        copy plus O(N log M) pops rather than a full sort.
        """
        if n <= 0 or not self._items:
            return []
        out: List[Notification] = []
        for item in self:
            out.append(item)
            if len(out) >= n:
                break
        return out

    def prune_expired(self, now: float) -> List[Notification]:
        """Drop every expired member, returning them (for accounting).

        Only entries actually due at ``now`` are touched (plus any stale
        leftovers sharing their deadline); when nothing is due this is a
        single heap peek.
        """
        expired: List[Notification] = []
        heap = self._expiry
        items = self._items
        while heap and heap[0][0] <= now:
            _expires_at, event_id = heapq.heappop(heap)
            item = items.get(event_id)
            if item is None or not item.is_expired(now):
                continue  # removed meanwhile, or a stale duplicate entry
            del items[event_id]
            expired.append(item)
        return expired

    def compact(self) -> None:
        """Rebuild both heaps, discarding stale lazy-deletion entries."""
        self._heap = [
            (-item.rank, item.published_at, event_id)
            for event_id, item in self._items.items()
        ]
        heapq.heapify(self._heap)
        self._expiry = [
            (item.expires_at, event_id)
            for event_id, item in self._items.items()
            if item.expires_at is not None
        ]
        heapq.heapify(self._expiry)

    def compact_if_stale(self, slack: Optional[int] = None) -> int:
        """Compact when stale entries outnumber live ones (amortized).

        Called automatically by :meth:`add` and :meth:`remove`, so a
        rank-churn workload keeps the heap within a constant factor of
        the live membership without any external sweep. Returns the
        number of heap entries reclaimed (0 when below the threshold).
        """
        if slack is None:
            slack = self._COMPACT_SLACK
        if len(self._heap) - len(self._items) <= len(self._items) + slack:
            return 0
        before = len(self._heap) + len(self._expiry)
        self.compact()
        return before - (len(self._heap) + len(self._expiry))

    @property
    def stale_entries(self) -> int:
        """Number of lazy-deletion leftovers currently in the heap."""
        return len(self._heap) - len(self._items)

    def get(self, event_id: EventId) -> Optional[Notification]:
        return self._items.get(event_id)

    def __contains__(self, key: object) -> bool:
        if isinstance(key, Notification):
            return key.event_id in self._items
        return key in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[Notification]:
        """Iterate members in rank order (highest first, oldest first
        within a rank).

        Lazy: consumers that stop early (e.g. a threshold cut-off) pay
        O(k log M) for the k members they consume instead of a full
        sort. Membership is snapshotted at the first ``next()``; members
        removed mid-iteration are skipped from then on.
        """
        heap = self._heap.copy()
        items = self._items
        seen: Set[EventId] = set()
        while heap:
            neg_rank, _published_at, event_id = heapq.heappop(heap)
            item = items.get(event_id)
            if item is None or -neg_rank != item.rank or event_id in seen:
                continue  # removed, stale after a rank change, or duplicate
            seen.add(event_id)
            yield item

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RankedQueue({len(self._items)} items)"


def highest_ranked(n: int, *queues: RankedQueue) -> List[Notification]:
    """``get_highest_ranked(N, q1 ∪ q2 ∪ …)`` over several queues.

    Members appearing in multiple queues (which the proxy avoids, but
    set semantics permit) are considered once. Equal ranks come out
    oldest-first regardless of which queue holds them.

    Each queue is traversed lazily in rank order and the streams are
    merged, so selecting N from a union of M members costs
    O(M) heap copies plus O(N log M) — not a full O(M log M) sort.
    """
    if n <= 0:
        return []
    out: List[Notification] = []
    seen: Set[EventId] = set()
    for item in heapq.merge(*queues, key=_selection_key):
        if item.event_id in seen:
            continue
        seen.add(item.event_id)
        out.append(item)
        if len(out) >= n:
            break
    return out
