"""Ranked notification queues.

The paper's pseudo-code manipulates queues with set notation — union,
difference, and ``get_highest_ranked(N, …)``. :class:`RankedQueue`
provides exactly those operations efficiently: a lazy-deletion binary
heap ordered by (rank descending, arrival order ascending) plus an
id-keyed index for O(1) membership and removal.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.broker.message import Notification
from repro.types import EventId


def _selection_key(notification: Notification) -> Tuple[float, float, EventId]:
    """Sort key for ranked selection: rank descending, then oldest
    first (publication time, then event id for full determinism)."""
    return (-notification.rank, notification.published_at, notification.event_id)


class RankedQueue:
    """A queue of notifications ordered by rank (highest first).

    Ties break oldest-first — by publication time, then event id — so
    two equally ranked notifications come out in publication order,
    matching a user reading equally important news oldest-first. The
    tie-break is explicit rather than insertion-order so it survives
    re-queues and holds across queue unions.
    """

    def __init__(self, items: Iterable[Notification] = ()) -> None:
        #: heap of (-rank, published_at, seq, event_id); stale entries
        #: are skipped. ``published_at`` before ``seq`` keeps the
        #: oldest-first tie-break intact across re-queues, which would
        #: otherwise reset the insertion order.
        self._heap: List[Tuple[float, float, int, EventId]] = []
        self._items: Dict[EventId, Notification] = {}
        self._seq = itertools.count()
        for item in items:
            self.add(item)

    def add(self, notification: Notification) -> None:
        """Insert a notification; re-adding one already present updates
        its heap position (used after rank changes)."""
        self._items[notification.event_id] = notification
        heapq.heappush(
            self._heap,
            (
                -notification.rank,
                notification.published_at,
                next(self._seq),
                notification.event_id,
            ),
        )

    def remove(self, event_id: EventId) -> Optional[Notification]:
        """Remove by id. Returns the notification or None if absent.

        The heap entry is left in place and skipped lazily when popped.
        """
        return self._items.pop(event_id, None)

    def discard(self, notification: Notification) -> Optional[Notification]:
        """Set-notation convenience: ``queue \\ event``."""
        return self.remove(notification.event_id)

    def reorder(self, notification: Notification) -> None:
        """Re-key a member whose rank changed. No-op if absent."""
        if notification.event_id in self._items:
            self.add(notification)

    def pop_highest(self) -> Optional[Notification]:
        """Remove and return the highest-ranked notification, or None."""
        while self._heap:
            neg_rank, _published_at, _seq, event_id = heapq.heappop(self._heap)
            item = self._items.get(event_id)
            if item is None:
                continue  # removed or stale duplicate entry
            if -neg_rank != item.rank:
                continue  # stale entry from before a rank change
            del self._items[event_id]
            return item
        return None

    def peek_highest(self) -> Optional[Notification]:
        """Return (without removing) the highest-ranked notification."""
        while self._heap:
            neg_rank, _published_at, _seq, event_id = self._heap[0]
            item = self._items.get(event_id)
            if item is None or -neg_rank != item.rank:
                heapq.heappop(self._heap)
                continue
            return item
        return None

    def top_n(self, n: int) -> List[Notification]:
        """The ``get_highest_ranked(N, queue)`` of the paper's pseudo-code
        — the N highest-ranked members, without removal."""
        if n <= 0 or not self._items:
            return []
        ordered = sorted(self._items.values(), key=_selection_key)
        return ordered[:n]

    def prune_expired(self, now: float) -> List[Notification]:
        """Drop every expired member, returning them (for accounting)."""
        expired = [m for m in self._items.values() if m.is_expired(now)]
        for item in expired:
            del self._items[item.event_id]
        return expired

    def compact(self) -> None:
        """Rebuild the heap, discarding stale lazy-deletion entries."""
        self._heap = [
            (-item.rank, item.published_at, next(self._seq), event_id)
            for event_id, item in self._items.items()
        ]
        heapq.heapify(self._heap)

    @property
    def stale_entries(self) -> int:
        """Number of lazy-deletion leftovers currently in the heap."""
        return len(self._heap) - len(self._items)

    def get(self, event_id: EventId) -> Optional[Notification]:
        return self._items.get(event_id)

    def __contains__(self, key: object) -> bool:
        if isinstance(key, Notification):
            return key.event_id in self._items
        return key in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[Notification]:
        """Iterate members in rank order (highest first, oldest first
        within a rank)."""
        return iter(sorted(self._items.values(), key=_selection_key))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RankedQueue({len(self._items)} items)"


def highest_ranked(n: int, *queues: RankedQueue) -> List[Notification]:
    """``get_highest_ranked(N, q1 ∪ q2 ∪ …)`` over several queues.

    Members appearing in multiple queues (which the proxy avoids, but
    set semantics permit) are considered once. Equal ranks come out
    oldest-first regardless of which queue holds them.
    """
    seen: Dict[EventId, Notification] = {}
    for queue in queues:
        for item in queue._items.values():
            seen.setdefault(item.event_id, item)
    if n <= 0:
        return []
    members = sorted(seen.values(), key=_selection_key)
    return members[:n]
