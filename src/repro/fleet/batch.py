"""Batched fleet-shard dispatch over columnar binding state.

The scalar fleet path (PR 7) replays four merged streams through one
Python callback per event; at 100k devices that is ~10 million dispatch
round-trips, each touching scattered per-binding objects. This module is
the batch alternative: the four streams collapse into **one** merged
batch stream registered through the engine's batch-pop API
(:meth:`~repro.sim.engine.Simulator.add_batch_stream`), and a single
*pump* consumes whole runs of consecutive events in one call, filtering
devices against the contiguous arrays of
:class:`~repro.fleet.columns.FleetColumns` and executing a **fused**
fast path that replicates the scalar call chain's observable effects
with a fraction of its Python-frame and attribute-walk overhead.

Merging the streams is an ordering-preserving transformation. In scalar
mode the four streams reserve contiguous sequence blocks in
registration order (arrivals → rank changes → reads → outages), so the
engine fires stream events sorted by ``(time, seq)`` — which is exactly
"by time; at equal times by stream kind in registration order; within a
kind in within-stream order". A stable sort by time over the four
kind-ordered streams concatenated in registration order reproduces that
order precisely, and the merged stream reserves one block with the same
total length, so dynamic timers (which always draw later sequence
numbers than the whole block) and pre-registered crash timers (which
always draw earlier ones) tie-break identically in both modes. The
payoff: the heap carries one cursor instead of four, and the pump is
re-entered only when a dynamic timer actually preempts it, not on every
cross-stream alternation.

Equivalence contract (pinned by ``tests/fleet/test_fleet_batch.py``):
batched and scalar dispatch produce bit-identical
:class:`~repro.metrics.streaming.FleetAccumulator` integer counters,
float sums, and sketch buckets for any policy, fault preset, and seed.
The fusion rules that make this hold:

* A binding is *fused* only while every guarantee of the fast path
  holds; :meth:`ShardBatchDispatcher.resync` re-derives the
  ``scalar_only`` gate (and every mirrored column) from the
  authoritative objects after each scalar fallback. Anything dynamic
  timers can invalidate (crash rebuilds, pending retractions, the
  rank-instability delay stage) routes the binding back through the
  scalar oracle path. Bindings that can never fuse (fault plan, or a
  shard-level fusion blocker) skip the resync entirely — their columns
  are never consulted.
* Fused handlers replicate the scalar code path's *observable* writes
  exactly, and skip only work proven to be a no-op under the fast-path
  guarantees: the ``prefetch_limit`` recompute when ``old_reads`` has
  not moved, the ``state.delay`` refresh while the tracker has no
  drops, and the schedule-then-cancel expiration-timer pair on
  immediately forwarded notifications (cancelled entries never count
  toward ``events_processed``, and skipping a reservation shifts later
  sequence numbers uniformly, preserving every relative order).
* Conservative columns fail safe: ``proxy_queued`` may read high after
  a dynamic expiration fired, which only demotes that binding's next
  READ/UP event to the scalar path — never the reverse.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.broker.message import Notification
from repro.errors import SimulationError
from repro.fleet.columns import FleetColumns
from repro.fleet.workload import FleetWorkload
from repro.proxy.policies import PolicyConfig
from repro.proxy.proxy import LastHopProxy
from repro.sim.engine import Simulator
from repro.types import NetworkStatus, PolicyKind, TopicId

_UP = NetworkStatus.UP
_DOWN = NetworkStatus.DOWN

#: Merged-stream event codes. Arrival classification (live / filtered /
#: dead-on-arrival) is precomputed vectorized at build time and encoded
#: directly, as is the outage direction, so the pump dispatches on one
#: small-int compare chain.
_ARRIVE = 0
_ARRIVE_FILTERED = 1
_ARRIVE_DEAD = 2
_CHANGE = 3
_READ = 4
_OUTAGE_DOWN = 5
_OUTAGE_UP = 6


class ShardBatchDispatcher:
    """Drives one fleet shard through the engine's batch-pop API.

    Construction wires nothing into the simulator; call
    :meth:`register_streams` after the per-device objects exist. The
    dispatcher assumes the fleet runner's wiring shape: one topic per
    device, no battery model, unlimited device storage,
    ``report_on_reconnect`` devices, and crash timers (if any) already
    scheduled — exactly what ``repro.fleet.runner`` builds.
    """

    def __init__(
        self,
        *,
        sim: Simulator,
        workload: FleetWorkload,
        proxy: LastHopProxy,
        policy: PolicyConfig,
        topics: List[TopicId],
        states: List,
        links: List,
        devices: List,
        stats_list: List,
        perform_reads: List,
        set_statuses: List,
        has_plan: List[bool],
        link_latency: float,
        recorder,
        auditor,
    ) -> None:
        self.sim = sim
        self.workload = workload
        self.proxy = proxy
        self.policy = policy
        self.topics = topics
        self.states = states
        self.links = links
        self.devices = devices
        self.stats_list = stats_list
        self.perform_reads = perform_reads
        self.set_statuses = set_statuses
        self.has_plan = has_plan

        #: The whole shard qualifies for fusion only without observers
        #: (recorder/auditor hooks fire on scalar paths only), with a
        #: zero-latency link (fused forwards deliver synchronously), and
        #: with the delay stage structurally inactive: a fixed positive
        #: delay arms per-event timers whose timeouts mutate queues
        #: outside the pumps.
        self.fused_shard = (
            recorder is None
            and auditor is None
            and link_latency == 0.0
            and (policy.delay is None or policy.delay == 0.0)
        )
        #: Adaptive delay (policy.delay None) stays fused per binding
        #: until its tracker records a rank drop; see :meth:`resync`.
        self.adaptive_delay = policy.delay is None
        self.online_kind = policy.kind is PolicyKind.ONLINE
        #: RATE arrivals earn forwarding credit per event — inherently
        #: scalar; RATE reads still fuse whenever the queues are empty.
        self.fuse_arrivals = self.fused_shard and policy.kind is not PolicyKind.RATE
        self.fuse_reads = self.fused_shard

        initial_limit = states[0].prefetch_limit if states else 0
        self.cols = FleetColumns(workload, initial_limit)
        if not self.fused_shard:
            self.cols.scalar_only[:] = 1
        elif any(has_plan):
            self.cols.scalar_only[np.asarray(has_plan, dtype=bool)] = 1
        #: Static per-device fusion eligibility (no fault plan, fused
        #: shard): unlike ``scalar_only`` this can never be invalidated
        #: by dynamic timers, so DOWN transitions — which touch no
        #: queue state — may fuse on it alone. A False here also means
        #: the binding's columns are never consulted, so its scalar
        #: fallbacks skip the resync.
        self.statics: List[bool] = [
            self.fused_shard and not plan for plan in has_plan
        ]
        self.dev_queues = [
            device._queues[topics[d]] for d, device in enumerate(devices)
        ]
        self.dev_consume = [device._consume for device in devices]
        #: Whether fused arrivals must keep the proxy's durable history
        #: and delay-tracker bookkeeping. Both exist solely for rank
        #: changes: ``history`` is read when a change resolves its
        #: original arrival (and by crash rebuilds, which imply a fault
        #: plan and hence a never-fused binding), and the tracker's
        #: publication count is only consulted once a drop has been
        #: recorded. A shard whose workload carries no change events can
        #: therefore skip both writes on the fused path;
        #: :meth:`register_streams` clears this when that holds.
        self.track_publications = True

        # Merged columnar stream (filled by register_streams). Plain
        # lists: per-item reads in the pump stay unboxed.
        self.m_times: List[float] = []
        self.m_codes: List[int] = []
        self.m_devs: List[int] = []
        #: Integer payload: event id (arrivals, changes), read count
        #: (reads), unused (outages).
        self.m_ints: List[int] = []
        #: Float payloads: rank / expires-at (NaN = never) for arrivals
        #: and changes; published-at for changes only (arrivals publish
        #: at their own timestamp).
        self.m_ranks: List[float] = []
        self.m_exps: List[float] = []
        self.m_pubs: List[float] = []

    # ------------------------------------------------------------------
    # Stream construction
    # ------------------------------------------------------------------
    @staticmethod
    def _check_times(name: str, times: np.ndarray) -> None:
        """Vectorized analogue of the scalar streams' lazy per-item
        validation: every timestamp finite (sortedness is guaranteed by
        the argsort that produced the order)."""
        if times.size and not np.isfinite(times).all():
            raise SimulationError(f"fleet {name} stream contains non-finite times")

    def register_streams(self) -> None:
        """Register the shard's events as one merged batch stream.

        Each kind is first ordered exactly as ``_register_fleet_streams``
        orders its stream (stable time argsorts; the outage
        ``lexsort((is_down, times))``); the kinds are then concatenated
        in registration order (arrivals → rank changes → reads →
        outages) and stable-sorted by time, which — see the module
        docstring — reproduces the scalar engine's ``(time, seq)``
        firing order event for event. The single reserved sequence
        block has the same total length as the scalar mode's four, so
        ``_seq_next`` (and with it every dynamic timer's tie-breaking)
        advances identically. Arrival classification (below-threshold /
        dead-on-arrival / live) is precomputed with vectorized masks;
        ``Notification`` objects are created lazily in the pump, only
        for events that survive.
        """
        wl = self.workload
        n = wl.devices
        duration = wl.config.duration
        threshold = wl.config.threshold

        acols = wl.arrivals
        adev = np.repeat(np.arange(n), wl.arrival_counts)
        order = np.argsort(acols.times, kind="stable")
        a_times = acols.times[order]
        self._check_times("arrival", a_times)
        a_ranks = acols.ranks[order]
        a_exps = acols.expires_at[order]
        below = a_ranks < threshold
        # NaN (the no-expiry sentinel) compares False, so non-expiring
        # notifications are never classified dead.
        dead = ~below & (a_exps <= a_times)
        a_codes = np.where(below, _ARRIVE_FILTERED, _ARRIVE).astype(np.uint8)
        a_codes[dead] = _ARRIVE_DEAD
        a_devs = adev[order]
        a_eids = acols.event_ids[order]

        ccols = wl.rank_changes
        if ccols.times.size:
            order = np.argsort(ccols.times, kind="stable")
            c_times = ccols.times[order]
            self._check_times("rank-change", c_times)
            c_eids = ccols.event_ids[order]
            c_ranks = ccols.new_ranks[order]
            # Resolve each change's original arrival so the update
            # notification carries the publication fields the scalar
            # runner copies from its ``originals`` map. Device-major
            # event ids are normally ascending (contiguous per-device
            # blocks); fall back to a dict for exotic traces.
            aeids = acols.event_ids
            src = None
            if aeids.size and bool(np.all(np.diff(aeids) > 0)):
                pos = np.searchsorted(aeids, c_eids)
                pos = np.minimum(pos, aeids.size - 1)
                if np.array_equal(aeids[pos], c_eids):
                    src = pos
            if src is None:
                index_of = {
                    eid: i for i, eid in enumerate(aeids.tolist())
                }
                src = np.fromiter(
                    (index_of[eid] for eid in c_eids.tolist()),
                    dtype=np.int64,
                    count=c_eids.size,
                )
            c_devs = adev[src]
            c_pubs = acols.times[src]
            c_exps = acols.expires_at[src]
        else:
            c_times = np.empty(0)
            c_eids = np.empty(0, dtype=np.int64)
            c_ranks = np.empty(0)
            c_devs = np.empty(0, dtype=np.int64)
            c_pubs = np.empty(0)
            c_exps = np.empty(0)

        rcols = wl.reads
        ridx = np.repeat(np.arange(n), wl.read_counts)
        order = np.argsort(rcols.times, kind="stable")
        r_times = rcols.times[order]
        self._check_times("read", r_times)
        r_devs = ridx[order]
        r_counts = rcols.counts[order]

        ocols = wl.outages
        oidx = np.repeat(np.arange(n), wl.outage_counts)
        ev_times = np.concatenate([ocols.starts, ocols.ends])
        ev_dev = np.concatenate([oidx, oidx])
        is_down = np.concatenate(
            [np.ones(ocols.starts.size, bool), np.zeros(ocols.ends.size, bool)]
        )
        keep = np.ones(ev_times.size, dtype=bool)
        keep[ocols.starts.size :] = ocols.ends < duration
        ev_times, ev_dev, is_down = ev_times[keep], ev_dev[keep], is_down[keep]
        order = np.lexsort((is_down, ev_times))
        o_times = ev_times[order]
        self._check_times("outage", o_times)
        o_devs = ev_dev[order]
        o_codes = np.where(
            is_down[order], _OUTAGE_DOWN, _OUTAGE_UP
        ).astype(np.uint8)

        na = a_times.size
        nc = c_times.size
        nr = r_times.size
        self.track_publications = nc > 0
        zr = np.zeros(nr)
        zo = np.zeros(o_times.size)
        times = np.concatenate([a_times, c_times, r_times, o_times])
        codes = np.concatenate([
            a_codes,
            np.full(nc, _CHANGE, dtype=np.uint8),
            np.full(nr, _READ, dtype=np.uint8),
            o_codes,
        ])
        devs = np.concatenate([a_devs, c_devs, r_devs, o_devs])
        ints = np.concatenate([a_eids, c_eids, r_counts, zo.astype(np.int64)])
        ranks = np.concatenate([a_ranks, c_ranks, zr, zo])
        exps = np.concatenate([a_exps, c_exps, zr, zo])
        pubs = np.concatenate([np.zeros(na), c_pubs, zr, zo])

        # Stable by time: ties keep concatenation order = registration
        # order across kinds, per-kind order within a kind — the scalar
        # engine's exact (time, seq) order.
        order = np.argsort(times, kind="stable")
        self.m_times = times[order].tolist()
        self.m_codes = codes[order].tolist()
        self.m_devs = devs[order].tolist()
        self.m_ints = ints[order].tolist()
        self.m_ranks = ranks[order].tolist()
        self.m_exps = exps[order].tolist()
        self.m_pubs = pubs[order].tolist()
        self.sim.add_batch_stream(self.m_times, self._pump)

    # ------------------------------------------------------------------
    # Column resynchronisation
    # ------------------------------------------------------------------
    def resync(self, d: int) -> None:
        """Re-mirror one binding's columns from the authoritative
        objects; called after every scalar fallback of a binding that
        can still fuse (``statics[d]``).

        Also re-fetches the :class:`TopicState` from the proxy (a crash
        rebuild replaces the state object) and re-derives the
        ``scalar_only`` gate: sticky conditions (fault plan, recorded
        rank drops under adaptive delay) keep the binding scalar,
        transient ones (pending retractions, armed delay timers) clear
        once drained.
        """
        st = self.proxy._states[self.topics[d]]
        self.states[d] = st
        cols = self.cols
        cols.network[d] = 1 if st.network is _UP else 0
        cols.queue_size[d] = st.queue_size
        cols.prefetch_limit[d] = st.prefetch_limit
        cols.proxy_queued[d] = st.queued_event_count()
        cols.offline_reads[d] = sum(
            len(entries) for entries in self.devices[d]._offline_reads.values()
        )
        nexp = math.inf
        for queue in (st.outgoing, st.prefetch, st.holding):
            heap = queue._expiry
            if heap and heap[0][0] < nexp:
                nexp = heap[0][0]
        cols.next_expiry[d] = nexp
        dirty = (
            not self.fused_shard
            or self.has_plan[d]
            or st.crashed
            or bool(st.pending_retractions)
            or bool(st.delay_handles)
            or (self.adaptive_delay and st.tracker.drops > 0)
        )
        cols.scalar_only[d] = 1 if dirty else 0

    # ------------------------------------------------------------------
    # The pump (engine batch-pop contract; see Simulator.add_batch_stream)
    # ------------------------------------------------------------------
    def _pump(
        self, pos: int, base: int, cap_time: float, cap_seq: int,
        until: float, limit: int,
    ) -> int:
        sim = self.sim
        heap = sim._heap
        times = self.m_times
        m_codes = self.m_codes
        m_devs = self.m_devs
        m_ints = self.m_ints
        m_ranks = self.m_ranks
        m_exps = self.m_exps
        m_pubs = self.m_pubs
        topics = self.topics
        states = self.states
        stats_list = self.stats_list
        links = self.links
        dev_queues = self.dev_queues
        dev_consume = self.dev_consume
        perform_reads = self.perform_reads
        set_statuses = self.set_statuses
        statics = self.statics
        cols = self.cols
        scalar_only = cols.scalar_only
        net = cols.network
        qsize = cols.queue_size
        plimit = cols.prefetch_limit
        queued = cols.proxy_queued
        nexp = cols.next_expiry
        offline = cols.offline_reads
        notify_batch = self.proxy.notify_batch
        read_batch = self.proxy.read_batch
        on_notification = self.proxy.on_notification
        try_forwarding = self.proxy.try_forwarding
        resync = self.resync
        fuse_arrivals = self.fuse_arrivals
        fuse_reads = self.fuse_reads
        online = self.online_kind
        track = self.track_publications
        seq_mark = sim._seq_next
        i = pos
        end = len(times)
        if limit < end - pos:
            end = pos + limit
        while i < end:
            t = times[i]
            if t > until:
                break
            if t > cap_time or (t == cap_time and base + i >= cap_seq):
                break
            sim._now = t
            code = m_codes[i]
            d = m_devs[i]
            if code == _ARRIVE:
                if fuse_arrivals and not scalar_only[d]:
                    exp = m_exps[i]
                    expiring = exp == exp  # NaN sentinel check
                    notification = Notification(
                        event_id=m_ints[i],
                        topic=topics[d],
                        rank=m_ranks[i],
                        published_at=t,
                        expires_at=exp if expiring else None,
                    )
                    if notify_batch(
                        states[d],
                        notification,
                        bool(net[d]),
                        qsize[d] < plimit[d],
                        online,
                        track,
                    ):
                        qsize[d] += 1
                    else:
                        queued[d] += 1
                        if expiring and exp < nexp[d]:
                            nexp[d] = exp
                else:
                    exp = m_exps[i]
                    on_notification(
                        Notification(
                            event_id=m_ints[i],
                            topic=topics[d],
                            rank=m_ranks[i],
                            published_at=t,
                            expires_at=None if exp != exp else exp,
                        )
                    )
                    if statics[d]:
                        resync(d)
            elif code == _OUTAGE_DOWN:
                # DOWN touches no queue state: the device listener
                # ignores it and the proxy only records the status, so
                # any un-planned binding fuses regardless of dirtiness.
                # (Branch order is by event frequency: a typical
                # campaign carries several outage transitions per read.)
                if statics[d]:
                    if net[d]:
                        links[d]._status = _DOWN
                        states[d].network = _DOWN
                        net[d] = 0
                else:
                    set_statuses[d](_DOWN)
            elif code == _OUTAGE_UP:
                # UP fuses when reconnection needs no offline read log
                # replayed. The listener cascade reduces to the queue
                # report (clean bindings track the device queue
                # exactly, so the report itself is the whole device
                # side) followed by the proxy's try_forwarding — a
                # no-op unless something is queued, in which case the
                # real flush runs and the columns resync from its
                # outcome.
                if statics[d] and not scalar_only[d] and not offline[d]:
                    if not net[d]:
                        st = states[d]
                        links[d]._status = _UP
                        qlen = len(dev_queues[d])
                        st.queue_size = qlen
                        qsize[d] = qlen
                        st.network = _UP
                        net[d] = 1
                        if queued[d]:
                            try_forwarding(st)
                            qsize[d] = st.queue_size
                            plimit[d] = st.prefetch_limit
                            queued[d] = st.queued_event_count()
                else:
                    set_statuses[d](_UP)
                    if statics[d]:
                        resync(d)
            elif code == _READ:
                n = m_ints[i]
                # Fused READ: link up, binding clean, and nothing
                # queued at the proxy (proxy_queued is a conservative
                # upper bound, so zero here means truly empty) — the
                # whole READ exchange reduces to moving-average
                # bookkeeping plus local consume.
                if fuse_reads and net[d] and not scalar_only[d] and not queued[d]:
                    stats = stats_list[d]
                    stats.reads += 1
                    st = states[d]
                    qlen = len(dev_queues[d])
                    read_batch(st, n, qlen)
                    qsize[d] = qlen
                    plimit[d] = st.prefetch_limit
                    if not dev_consume[d](topics[d], n):
                        stats.empty_reads += 1
                else:
                    perform_reads[d](topics[d], n)
                    if statics[d]:
                        resync(d)
            elif code == _CHANGE:
                # Rank changes always take the scalar oracle path: they
                # mutate shared Notification objects, may arm
                # retractions, and feed the delay tracker — all of
                # which the fused gates must then see.
                exp = m_exps[i]
                on_notification(
                    Notification(
                        event_id=m_ints[i],
                        topic=topics[d],
                        rank=m_ranks[i],
                        published_at=m_pubs[i],
                        expires_at=None if exp != exp else exp,
                    )
                )
                if statics[d]:
                    resync(d)
            else:
                # Filtered / dead-on-arrival: counters only. The scalar
                # path's trailing try_forwarding is a no-op here
                # (queues untouched; prefetch_limit already equals the
                # policy-effective value).
                if fuse_arrivals and not scalar_only[d]:
                    stats = stats_list[d]
                    stats.arrivals += 1
                    if code == _ARRIVE_FILTERED:
                        stats.filtered += 1
                    else:
                        stats.expired_at_proxy += 1
                else:
                    exp = m_exps[i]
                    on_notification(
                        Notification(
                            event_id=m_ints[i],
                            topic=topics[d],
                            rank=m_ranks[i],
                            published_at=t,
                            expires_at=None if exp != exp else exp,
                        )
                    )
                    if statics[d]:
                        resync(d)
            i += 1
            if sim._seq_next != seq_mark:
                seq_mark = sim._seq_next
                if heap:
                    top = heap[0]
                    cap_time = top.time
                    cap_seq = top.seq
        return i - pos
