"""Adaptive policy auto-tuning campaigns over the sweep store.

The paper only ever explores the unified algorithm's knobs — buffer
multiplier, expiration-threshold window, delay stage, rate thresholds —
on fixed grids (Figures 3–7). This module *searches* that space: a
:class:`TuneConfig` declares a parameter space over one policy preset's
constructor arguments, an objective over stored
:meth:`~repro.metrics.streaming.FleetAccumulator.metrics_row` entries,
and a seeded deterministic search budget; :func:`run_fleet_tune` walks
the space adaptively and tracks the best-known variant per scenario
family in the store's ``best`` table.

Search strategy
---------------

Two classic pieces, composed and made fully deterministic:

1. **Successive halving over seed replicates.** Round 0 draws
   ``samples`` candidates from the space (candidate 0 is the space
   midpoint, the rest quasi-random from hashed substreams of
   ``search_seed``). All are *screened* on the cheap seed prefix
   (``seeds[:screen_seeds]``); the top ``survivors`` by screening
   objective are *promoted* to the full seed set, and the best
   fully-replicated survivor becomes the incumbent.
2. **Coordinate refinement.** For ``refine_rounds`` rounds, each
   parameter in declaration order proposes neighbors of the incumbent
   (``±span/2·shrink^(round+1)`` for ranges, every other value for
   choices), evaluated on the full seed set; a proposal that improves
   the ``(objective, canonical key)`` order becomes the new incumbent.

Ties everywhere break by the candidate's canonical parameter JSON, so
an all-identical-objective space still yields one deterministic winner.

Why the trajectory is reproducible
----------------------------------

Every evaluation is one sweep cell — ``(seeded scenario, named policy
variant, fault spec)`` hashed by :func:`repro.fleet.store.cell_key` —
routed through :func:`repro.experiments.parallel.run_fleet_policy_batch`
and appended to the :class:`~repro.fleet.store.SweepStore`. Cells are
pure functions of their key (the PR 9 contract), objectives are computed
from the *stored* row (so a fetched cell and a freshly computed one feed
the search bit-identical floats), and the search itself consumes nothing
but those objectives and the config. The whole trajectory is therefore a
pure function of ``(TuneConfig, store contents)``: killing a campaign
after any number of evaluations and resuming replays the same decisions
from stored rows and lands on the same incumbent, byte for byte.

Objective semantics
-------------------

Per ``(candidate, seed)`` cell the objective scalarizes the stored
metrics against the ``online`` baseline cell of the same seed (computed
on demand, stored like any other cell):

* *weighted mode* (default): ``waste + loss_weight · loss``;
* *constraint mode* (``loss_budget`` set): ``waste`` when ``loss <=
  loss_budget``, else ``2 + (loss - loss_budget)`` — waste and loss are
  fractions in ``[0, 1]``, so every feasible point beats every
  infeasible one and infeasible points order by constraint violation.

``loss`` is the count-based shortfall of messages read versus the
baseline (the documented lower bound of the paper's §3.1 set metric —
see :mod:`repro.fleet.sweep`). A candidate's score is the mean over the
seeds evaluated so far (screening seeds first, full set once promoted).
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import faults as faults_mod
from repro.errors import ConfigurationError
from repro.experiments import parallel
from repro.faults import FaultSpec
from repro.fleet import dispatch
from repro.fleet.config import FleetScenarioConfig
from repro.fleet.store import (
    BestRow,
    SweepRow,
    SweepStore,
    canonical_json,
    cell_key,
    _sha256,
)
from repro.fleet.sweep import (
    LOSS_BASELINE,
    PolicyVariant,
    parse_policy_token,
    policy_preset_constructor,
    policy_variant_from_spec,
)
from repro.sim.rng import derive_seed

#: Constraint-mode penalty floor: waste is a fraction, so any feasible
#: objective is < 1 < 2 <= any infeasible one.
_INFEASIBLE_BASE = 2.0

#: Version pin folded into :func:`family_key`; bump when the family
#: identity or objective semantics change.
_FAMILY_FORMAT = 1


# ----------------------------------------------------------------------
# Parameter space
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TuneParam:
    """One searchable dimension, mapped onto a preset constructor kwarg.

    Exactly one of two shapes:

    * a **range** — ``lo``/``hi`` bounds, continuous by default,
      ``integer=True`` for integer-valued knobs (``ma_window``,
      ``initial_prefetch_limit``, ``prefetch_limit``);
    * a **choice** — an explicit tuple of JSON-native values, e.g.
      pinning the delay stage to ``(0.0, 60.0, 600.0)``.
    """

    name: str
    lo: Optional[float] = None
    hi: Optional[float] = None
    integer: bool = False
    choices: Optional[Tuple[object, ...]] = None

    @property
    def is_choice(self) -> bool:
        return self.choices is not None

    def validate(self) -> None:
        if not self.name:
            raise ConfigurationError("tune parameter name must not be empty")
        if self.is_choice:
            if self.lo is not None or self.hi is not None:
                raise ConfigurationError(
                    f"parameter {self.name!r} mixes choices with range bounds"
                )
            if not self.choices:
                raise ConfigurationError(
                    f"parameter {self.name!r} has no choices"
                )
            if len(set(map(canonical_json, self.choices))) != len(self.choices):
                raise ConfigurationError(
                    f"parameter {self.name!r} has duplicate choices"
                )
            return
        if self.lo is None or self.hi is None:
            raise ConfigurationError(
                f"parameter {self.name!r} needs lo/hi bounds or choices"
            )
        if not (math.isfinite(self.lo) and math.isfinite(self.hi)):
            raise ConfigurationError(
                f"parameter {self.name!r} bounds must be finite"
            )
        if not self.lo < self.hi:
            raise ConfigurationError(
                f"parameter {self.name!r} needs lo < hi, got "
                f"[{self.lo}, {self.hi}]"
            )
        if self.integer and (
            int(self.lo) != self.lo or int(self.hi) != self.hi
        ):
            raise ConfigurationError(
                f"integer parameter {self.name!r} needs integral bounds"
            )

    # ------------------------------------------------------------------
    def midpoint(self) -> object:
        """The deterministic round-0 anchor value."""
        if self.is_choice:
            return self.choices[0]
        if self.integer:
            return int(self.lo + self.hi) // 2
        return (self.lo + self.hi) / 2.0

    def sample(self, u: float) -> object:
        """Map one unit-interval draw onto the parameter's domain."""
        if self.is_choice:
            index = min(int(u * len(self.choices)), len(self.choices) - 1)
            return self.choices[index]
        if self.integer:
            span = int(self.hi) - int(self.lo) + 1
            return int(self.lo) + min(int(u * span), span - 1)
        return self.lo + u * (self.hi - self.lo)

    def corners(self) -> Tuple[object, ...]:
        """Domain extremes, validated eagerly against the preset."""
        if self.is_choice:
            return tuple(self.choices)
        if self.integer:
            return (int(self.lo), int(self.hi))
        return (self.lo, self.hi)

    def neighbors(self, current: object, round_index: int,
                  shrink: float) -> List[object]:
        """Refinement proposals around ``current`` for one round."""
        if self.is_choice:
            return [c for c in self.choices
                    if canonical_json(c) != canonical_json(current)]
        span = self.hi - self.lo
        step = span / 2.0 * shrink ** (round_index + 1)
        if self.integer:
            step = max(1, int(round(step)))
            lo_p = max(int(self.lo), int(current) - step)
            hi_p = min(int(self.hi), int(current) + step)
        else:
            lo_p = max(self.lo, current - step)
            hi_p = min(self.hi, current + step)
        return [v for v in (lo_p, hi_p) if v != current]


# ----------------------------------------------------------------------
# Objective
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TuneObjective:
    """Scalarized waste-vs-loss objective (minimized).

    ``loss_budget=None`` is the weighted mode ``waste + loss_weight ·
    loss``; setting it switches to constraint mode — minimize waste
    subject to ``loss <= loss_budget``, with infeasible points ranked
    above every feasible one by their constraint violation.
    """

    loss_weight: float = 10.0
    loss_budget: Optional[float] = None

    def validate(self) -> None:
        if self.loss_weight < 0 or not math.isfinite(self.loss_weight):
            raise ConfigurationError(
                f"loss_weight must be finite and non-negative, got "
                f"{self.loss_weight}"
            )
        if self.loss_budget is not None and not 0.0 <= self.loss_budget <= 1.0:
            raise ConfigurationError(
                f"loss_budget must be within [0, 1], got {self.loss_budget}"
            )

    def scalarize(self, waste: float, loss: float) -> float:
        if self.loss_budget is None:
            return waste + self.loss_weight * loss
        if loss <= self.loss_budget:
            return waste
        return _INFEASIBLE_BASE + (loss - self.loss_budget)

    def describe(self) -> str:
        if self.loss_budget is None:
            return f"waste + {self.loss_weight:g}*loss"
        return f"min waste s.t. loss <= {self.loss_budget:g}"


# ----------------------------------------------------------------------
# Campaign configuration
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TuneConfig:
    """Full description of one auto-tuning campaign.

    ``space`` grids keyword arguments of ``preset``'s constructor
    (:func:`repro.fleet.sweep.policy_preset_constructor`); ``seeds`` is
    the full replicate set, of which the first ``screen_seeds`` form
    the cheap screening prefix. ``budget`` bounds *logical* evaluations
    — distinct ``(candidate, seed)`` pairs the search may consume,
    whether computed or fetched from the store — so a fresh and a
    resumed campaign see identical budget accounting.
    """

    base: FleetScenarioConfig
    space: Tuple[TuneParam, ...]
    preset: str = "unified"
    objective: TuneObjective = field(default_factory=TuneObjective)
    seeds: Tuple[int, ...] = (0, 1, 2)
    screen_seeds: int = 1
    samples: int = 8
    survivors: int = 2
    refine_rounds: int = 2
    refine_shrink: float = 0.5
    budget: Optional[int] = None
    search_seed: int = 0
    faults: Optional[FaultSpec] = None

    def validate(self) -> None:
        self.base.validate()
        self.objective.validate()
        if not self.space:
            raise ConfigurationError("tune needs at least one parameter")
        names = [p.name for p in self.space]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"duplicate tune parameters: "
                f"{', '.join(sorted(n for n in names if names.count(n) > 1))}"
            )
        for param in self.space:
            param.validate()
        if not self.seeds:
            raise ConfigurationError("tune needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ConfigurationError("tune seeds must be unique")
        if not 1 <= self.screen_seeds <= len(self.seeds):
            raise ConfigurationError(
                f"screen_seeds must be within [1, {len(self.seeds)}], got "
                f"{self.screen_seeds}"
            )
        if self.samples < 1:
            raise ConfigurationError(
                f"samples must be >= 1, got {self.samples}"
            )
        if not 1 <= self.survivors <= self.samples:
            raise ConfigurationError(
                f"survivors must be within [1, {self.samples}], got "
                f"{self.survivors}"
            )
        if self.refine_rounds < 0:
            raise ConfigurationError(
                f"refine_rounds must be >= 0, got {self.refine_rounds}"
            )
        if not 0.0 < self.refine_shrink < 1.0:
            raise ConfigurationError(
                f"refine_shrink must be within (0, 1), got "
                f"{self.refine_shrink}"
            )
        if self.budget is not None and self.budget < self.samples:
            raise ConfigurationError(
                f"budget must cover one screening pass "
                f"(>= samples = {self.samples}), got {self.budget}"
            )
        # Eagerly reject spaces the preset cannot realize: every domain
        # extreme, one parameter at a time around the midpoint anchor,
        # must construct and validate (all PolicyConfig constraints are
        # interval bounds, so valid extremes imply a valid interior).
        anchor = self.midpoint_assignment()
        self.variant_for(anchor).validate()
        for param in self.space:
            for value in param.corners():
                probe = dict(anchor)
                probe[param.name] = value
                self.variant_for(probe).validate()

    # ------------------------------------------------------------------
    def midpoint_assignment(self) -> Dict[str, object]:
        return {p.name: p.midpoint() for p in self.space}

    def sample_assignment(self, index: int) -> Dict[str, object]:
        """Candidate ``index`` of round 0 (0 = the midpoint anchor)."""
        if index == 0:
            return self.midpoint_assignment()
        return {
            p.name: p.sample(
                derive_seed(self.search_seed, f"sample:{index}:{p.name}")
                / 2.0 ** 64
            )
            for p in self.space
        }

    def variant_for(self, assignment: Dict[str, object]) -> PolicyVariant:
        """The named policy variant one assignment evaluates as."""
        return policy_variant_from_spec(
            {"preset": self.preset, "params": dict(assignment)}
        )

    def spec_json(self) -> str:
        """Canonical JSON of the whole campaign spec."""
        return canonical_json(
            {
                "tune_format": _FAMILY_FORMAT,
                "base": self.base,
                "space": [dataclasses.asdict(p) for p in self.space],
                "preset": self.preset,
                "objective": self.objective,
                "seeds": list(self.seeds),
                "screen_seeds": self.screen_seeds,
                "samples": self.samples,
                "survivors": self.survivors,
                "refine_rounds": self.refine_rounds,
                "refine_shrink": self.refine_shrink,
                "budget": self.budget,
                "search_seed": self.search_seed,
                "faults": self.faults,
            }
        )

    def campaign_key(self) -> str:
        return _sha256(self.spec_json())

    def family_key(self) -> str:
        """Hash of everything that makes two objectives comparable.

        The scenario minus its seed, the seed set, the objective spec,
        and the fault spec — deliberately *not* the preset or the
        search knobs, so a later campaign searching a different space
        over the same scenario competes for (and can improve) the same
        ``best`` row.
        """
        scenario = dataclasses.asdict(self.base)
        scenario.pop("seed", None)
        spec = self.faults
        if spec is not None and spec.is_null:
            spec = None
        return _sha256(
            canonical_json(
                {
                    "tune_family_format": _FAMILY_FORMAT,
                    "scenario": scenario,
                    "seeds": list(self.seeds),
                    "objective": self.objective,
                    "faults": spec,
                }
            )
        )

    def family_label(self) -> str:
        return (
            f"devices={self.base.devices} threshold={self.base.threshold:g} "
            f"seeds={len(self.seeds)} [{self.objective.describe()}]"
        )


# ----------------------------------------------------------------------
# Pure search core
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TrajectoryPoint:
    """One incumbent change, stamped with the budget spent so far."""

    evaluations: int
    phase: str
    variant_key: str
    objective: float

    def as_json(self) -> str:
        return canonical_json(
            {
                "evaluations": self.evaluations,
                "phase": self.phase,
                "variant": json.loads(self.variant_key),
                "objective": self.objective,
            }
        )


def trajectory_jsonl(trajectory: Sequence[TrajectoryPoint]) -> str:
    """The byte-comparable incumbent-trajectory image (one JSON/line)."""
    return "\n".join(point.as_json() for point in trajectory)


@dataclass(frozen=True)
class TuneSearchResult:
    """What the search core found (objective is minimized)."""

    params: Optional[Dict[str, object]]
    params_json: Optional[str]
    objective: Optional[float]
    #: Seeds the incumbent's objective averages over — the full seed
    #: set unless the budget ran out before promotion finished.
    objective_seeds: Tuple[int, ...]
    evaluations: int
    exhausted: bool
    trajectory: Tuple[TrajectoryPoint, ...]


def run_tune_search(
    config: TuneConfig,
    evaluate_batch: Callable[[List[Dict[str, object]], int], List[float]],
) -> TuneSearchResult:
    """The deterministic search loop, decoupled from fleet execution.

    ``evaluate_batch(assignments, seed)`` returns one scalar objective
    per assignment; it is called with deduplicated work only (the core
    memoizes ``(assignment, seed)`` pairs, and each unique pair counts
    once against ``config.budget`` no matter how often it is consulted).
    Injectable so search quality and determinism are testable against
    synthetic objective landscapes without running fleets.
    """
    cache: Dict[Tuple[str, int], float] = {}
    used = 0
    exhausted = False
    trajectory: List[TrajectoryPoint] = []

    def key_of(assignment: Dict[str, object]) -> str:
        return canonical_json(assignment)

    def eval_seeds(
        assignments: List[Dict[str, object]], seeds: Sequence[int]
    ) -> bool:
        """Fill the cache; False when the budget cut the phase short."""
        nonlocal used, exhausted
        for seed in seeds:
            needed = [
                a for a in assignments if (key_of(a), seed) not in cache
            ]
            if not needed:
                continue
            if config.budget is not None and used + len(needed) > config.budget:
                exhausted = True
                return False
            for assignment, value in zip(
                needed, evaluate_batch(needed, seed)
            ):
                cache[(key_of(assignment), seed)] = float(value)
            used += len(needed)
        return True

    def covered(
        assignments: List[Dict[str, object]], seeds: Sequence[int]
    ) -> List[Dict[str, object]]:
        return [
            a for a in assignments
            if all((key_of(a), s) in cache for s in seeds)
        ]

    def mean_over(
        assignment: Dict[str, object], seeds: Sequence[int]
    ) -> float:
        values = [cache[(key_of(assignment), s)] for s in seeds]
        return sum(values) / len(values)

    def finalize(
        incumbent: Optional[Dict[str, object]],
        objective: Optional[float],
        seeds: Tuple[int, ...],
    ) -> TuneSearchResult:
        return TuneSearchResult(
            params=incumbent,
            params_json=None if incumbent is None else key_of(incumbent),
            objective=objective,
            objective_seeds=seeds,
            evaluations=used,
            exhausted=exhausted,
            trajectory=tuple(trajectory),
        )

    # Round 0: deterministic candidate draw, deduplicated keep-first
    # (choice-heavy spaces can collide; identical assignments would
    # only burn budget on cache hits).
    candidates: List[Dict[str, object]] = []
    seen = set()
    for index in range(config.samples):
        assignment = config.sample_assignment(index)
        key = key_of(assignment)
        if key not in seen:
            seen.add(key)
            candidates.append(assignment)

    screen = tuple(config.seeds[: config.screen_seeds])
    full = tuple(config.seeds)

    # Phase 1: screen every candidate on the cheap seed prefix.
    completed = eval_seeds(candidates, screen)
    screened = covered(candidates, screen)
    if not screened:
        # budget < samples is rejected by validate(); only an
        # interrupted evaluator (never the budget) can land here.
        return finalize(None, None, ())
    ranked = sorted(screened, key=lambda a: (mean_over(a, screen), key_of(a)))
    incumbent = ranked[0]
    incumbent_objective = mean_over(incumbent, screen)
    incumbent_seeds = screen
    trajectory.append(
        TrajectoryPoint(used, "screen", key_of(incumbent), incumbent_objective)
    )
    if not completed:
        return finalize(incumbent, incumbent_objective, incumbent_seeds)

    # Phase 2: promote the survivors to the full replicate set.
    survivors = ranked[: config.survivors]
    completed = eval_seeds(survivors, full)
    promoted = covered(survivors, full)
    if promoted:
        best = min(promoted, key=lambda a: (mean_over(a, full), key_of(a)))
        incumbent = best
        incumbent_objective = mean_over(best, full)
        incumbent_seeds = full
        trajectory.append(
            TrajectoryPoint(
                used, "promote", key_of(best), incumbent_objective
            )
        )
    if not completed:
        return finalize(incumbent, incumbent_objective, incumbent_seeds)

    # Phase 3: coordinate refinement around the incumbent.
    for round_index in range(config.refine_rounds):
        for param in config.space:
            proposals = []
            for value in param.neighbors(
                incumbent[param.name], round_index, config.refine_shrink
            ):
                candidate = dict(incumbent)
                candidate[param.name] = value
                if key_of(candidate) != key_of(incumbent):
                    proposals.append(candidate)
            if not proposals:
                continue
            completed = eval_seeds(proposals, full)
            for candidate in covered(proposals, full):
                objective = mean_over(candidate, full)
                if (objective, key_of(candidate)) < (
                    incumbent_objective, key_of(incumbent)
                ):
                    incumbent = candidate
                    incumbent_objective = objective
                    trajectory.append(
                        TrajectoryPoint(
                            used,
                            f"refine{round_index + 1}:{param.name}",
                            key_of(candidate),
                            objective,
                        )
                    )
            if not completed:
                return finalize(
                    incumbent, incumbent_objective, incumbent_seeds
                )
    return finalize(incumbent, incumbent_objective, incumbent_seeds)


# ----------------------------------------------------------------------
# Fleet-backed campaigns
# ----------------------------------------------------------------------

class _Interrupted(Exception):
    """Internal: the ``max_evals`` kill switch fired mid-campaign."""


@dataclass(frozen=True)
class TunedVariant:
    """The campaign's incumbent, as recorded (or recordable) in ``best``."""

    name: str
    params_json: str
    policy_json: str
    objective: float
    seeds: Tuple[int, ...]


@dataclass(frozen=True)
class TuneOutcome:
    """What one :func:`run_fleet_tune` invocation did."""

    config: TuneConfig
    campaign_key: str
    family_key: str
    #: ``None`` when the campaign was interrupted before any checkpoint.
    incumbent: Optional[TunedVariant]
    #: Logical evaluations the search consumed (computed or fetched).
    evaluations: int
    #: Cells newly simulated by this invocation (baselines included).
    computed: int
    #: Cells satisfied from the store (resume or cross-campaign reuse).
    reused: int
    #: The search budget ran out before the schedule finished.
    exhausted: bool
    #: The ``max_evals`` kill switch stopped this invocation; resume to
    #: continue the identical trajectory.
    interrupted: bool
    #: The incumbent replaced (or created) the family's ``best`` row.
    best_recorded: bool
    trajectory: Tuple[TrajectoryPoint, ...]
    #: Every row of this campaign currently in the store.
    rows: Tuple[SweepRow, ...]


def run_fleet_tune(
    config: TuneConfig,
    store: SweepStore,
    *,
    shards: int = 1,
    jobs: int = 1,
    resume: bool = False,
    max_evals: Optional[int] = None,
    use_batch: object = None,
    link_latency: float = 0.0,
    progress: Optional[Callable[[str], None]] = None,
) -> TuneOutcome:
    """Run (or resume) an auto-tuning campaign into ``store``.

    ``shards``/``jobs`` are pure throughput levers (cell metrics are
    invariant to them at fixed shards, so the trajectory is too).
    ``max_evals`` bounds cells *newly computed* by this invocation —
    the kill switch the smoke test uses; the interrupted campaign
    resumes with ``resume=True``, replaying its decisions from stored
    rows. On completion the incumbent is offered to the store's
    ``best`` table (kept only if strictly better than the stored one).
    """
    config.validate()
    if config.faults is None:
        # Ambient process-wide spec changes every metric; fold it into
        # the identity exactly like the sweep layer does.
        ambient = faults_mod.active_spec()
        if ambient is not None:
            config = replace(config, faults=ambient)
    if max_evals is not None and max_evals < 1:
        raise ConfigurationError(f"max_evals must be >= 1, got {max_evals}")
    use_batch_resolved = dispatch.resolve(use_batch)

    campaign = config.campaign_key()
    store.register_campaign(campaign, config.spec_json())
    if store.rows(campaign) and not resume:
        raise ConfigurationError(
            "store already holds cells of this tune campaign; pass "
            "resume=True (--resume) to replay them and continue"
        )

    workloads = parallel.FleetWorkloadCache(
        maxsize=max(2, len(config.seeds))
    )
    baseline_variant = parse_policy_token(LOSS_BASELINE)
    baseline_reads: Dict[int, int] = {}
    counters = {"computed": 0, "reused": 0}

    def ensure_cell(seed: int, variant: PolicyVariant) -> SweepRow:
        """Fetch the cell from the store or compute-and-append it."""
        scenario = config.base.with_changes(seed=seed)
        key = cell_key(
            scenario, variant.name, variant.policy, faults=config.faults
        )
        row = store.get(key)
        if row is not None:
            counters["reused"] += 1
            return row
        if max_evals is not None and counters["computed"] >= max_evals:
            raise _Interrupted
        workload = workloads.get(scenario)
        (accumulator,) = parallel.run_fleet_policy_batch(
            workload,
            [variant.policy],
            shards=shards,
            jobs=jobs,
            fault_spec=config.faults,
            link_latency=link_latency,
            use_batch=use_batch_resolved,
        )
        row = SweepRow(
            cell_key=key,
            campaign_key=campaign,
            scenario_json=canonical_json(scenario),
            policy_name=variant.name,
            policy_json=canonical_json(variant.policy),
            seed=seed,
            metrics_json=canonical_json(accumulator.metrics_row()),
        )
        store.append(row)
        counters["computed"] += 1
        if progress is not None:
            progress(
                f"[{counters['computed']} computed] seed={seed} "
                f"policy={variant.name}"
            )
        return row

    def evaluate_batch(
        assignments: List[Dict[str, object]], seed: int
    ) -> List[float]:
        if seed not in baseline_reads:
            baseline = ensure_cell(seed, baseline_variant)
            baseline_reads[seed] = int(baseline.metrics["messages_read"])
        base_reads = baseline_reads[seed]
        scores = []
        for assignment in assignments:
            # Objectives always come from the *stored* row (canonical
            # JSON round-trips floats exactly), so a fetched cell and a
            # freshly computed one are indistinguishable to the search.
            row = ensure_cell(seed, config.variant_for(assignment))
            metrics = row.metrics
            waste = float(metrics["waste"])
            read = int(metrics["messages_read"])
            loss = (
                max(0, base_reads - read) / base_reads if base_reads else 0.0
            )
            scores.append(config.objective.scalarize(waste, loss))
        return scores

    interrupted = False
    try:
        result = run_tune_search(config, evaluate_batch)
    except _Interrupted:
        interrupted = True
        result = TuneSearchResult(
            params=None,
            params_json=None,
            objective=None,
            objective_seeds=(),
            evaluations=0,
            exhausted=False,
            trajectory=(),
        )

    incumbent: Optional[TunedVariant] = None
    best_recorded = False
    if result.params is not None:
        variant = config.variant_for(result.params)
        incumbent = TunedVariant(
            name=variant.name,
            params_json=result.params_json,
            policy_json=canonical_json(variant.policy),
            objective=result.objective,
            seeds=tuple(result.objective_seeds),
        )
        if tuple(result.objective_seeds) == tuple(config.seeds):
            # Only fully-replicated incumbents are comparable across
            # campaigns; a budget-exhausted screening winner is not.
            best_recorded = store.record_best(
                BestRow(
                    family_key=config.family_key(),
                    label=config.family_label(),
                    campaign_key=campaign,
                    variant_name=incumbent.name,
                    policy_json=incumbent.policy_json,
                    params_json=incumbent.params_json,
                    objective=incumbent.objective,
                    objective_json=canonical_json(config.objective),
                    seeds_json=canonical_json(list(config.seeds)),
                )
            )

    return TuneOutcome(
        config=config,
        campaign_key=campaign,
        family_key=config.family_key(),
        incumbent=incumbent,
        evaluations=result.evaluations,
        computed=counters["computed"],
        reused=counters["reused"],
        exhausted=result.exhausted,
        interrupted=interrupted,
        best_recorded=best_recorded,
        trajectory=result.trajectory,
        rows=tuple(store.rows(campaign)),
    )


# ----------------------------------------------------------------------
# Regression tracking: diff best tables across stores
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BestDiff:
    """One scenario family's incumbent, current vs baseline store."""

    family_key: str
    label: str
    #: ``new`` (no baseline), ``improved``, ``unchanged``, ``regressed``,
    #: or ``missing`` (baseline family the current store never tuned).
    status: str
    current: Optional[BestRow]
    baseline: Optional[BestRow]
    #: ``current - baseline`` objective, when both sides exist.
    delta: Optional[float]


def diff_best(
    current: Sequence[BestRow],
    baseline: Sequence[BestRow],
    *,
    rel_tol: float = 1e-9,
) -> List[BestDiff]:
    """Compare two stores' best-known variants, family by family.

    ``rel_tol`` absorbs float-reassociation noise across platforms; a
    deterministic re-run of the same campaign lands on ``unchanged``.
    Families sort by key, so the report is byte-stable.
    """
    current_by_key = {row.family_key: row for row in current}
    baseline_by_key = {row.family_key: row for row in baseline}
    diffs = []
    for key in sorted(set(current_by_key) | set(baseline_by_key)):
        cur = current_by_key.get(key)
        base = baseline_by_key.get(key)
        if cur is None:
            diffs.append(BestDiff(key, base.label, "missing", None, base, None))
            continue
        if base is None:
            diffs.append(BestDiff(key, cur.label, "new", cur, None, None))
            continue
        delta = cur.objective - base.objective
        if math.isclose(
            cur.objective, base.objective, rel_tol=rel_tol, abs_tol=rel_tol
        ):
            status = "unchanged"
        elif cur.objective < base.objective:
            status = "improved"
        else:
            status = "regressed"
        diffs.append(BestDiff(key, cur.label, status, cur, base, delta))
    return diffs


def render_report_text(diffs: Sequence[BestDiff]) -> str:
    """Plain-text regression report over best-known variants."""
    if not diffs:
        return "no tuned families in either store"
    lines = ["best-known policy variants (current vs baseline):"]
    for diff in diffs:
        cur = diff.current.objective if diff.current else None
        base = diff.baseline.objective if diff.baseline else None
        detail = " ".join(
            part for part in (
                f"objective={cur:.6f}" if cur is not None else None,
                f"baseline={base:.6f}" if base is not None else None,
                f"delta={diff.delta:+.6f}" if diff.delta is not None else None,
                f"variant={diff.current.variant_name}"
                if diff.current else None,
            )
            if part is not None
        )
        lines.append(f"  {diff.status:>9}  {diff.label}  {detail}")
    regressed = sum(1 for d in diffs if d.status == "regressed")
    lines.append(
        f"{len(diffs)} family(ies), {regressed} regression(s); objective "
        "is minimized, so smaller is better."
    )
    return "\n".join(lines)


def render_report_json(diffs: Sequence[BestDiff]) -> str:
    """JSON regression report (stable key order)."""
    payload = [
        {
            "family_key": diff.family_key,
            "label": diff.label,
            "status": diff.status,
            "delta": diff.delta,
            "current": None if diff.current is None else json.loads(
                diff.current.as_json()
            ),
            "baseline": None if diff.baseline is None else json.loads(
                diff.baseline.as_json()
            ),
        }
        for diff in diffs
    ]
    return json.dumps(payload, indent=2, sort_keys=True)
