"""Append-only sqlite results store for fleet sweep campaigns.

A sweep campaign (:mod:`repro.fleet.sweep`) evaluates a grid of
``(scenario, seed, policy)`` cells, each an expensive fleet run. The
store makes campaigns *resumable* and their results *queryable*: every
completed cell lands as one immutable row keyed by a canonical config
hash — the same construction as the trace cache key
(:func:`repro.sim.trace_cache.trace_key`) — so

* a cell's identity is a pure function of its configuration (scenario
  with the seed applied, policy variant, fault spec, store format
  version): two structurally equal cells collide on any machine, in any
  process, in any campaign;
* resuming a half-finished campaign is a set lookup — completed keys
  are skipped, pending ones run, and because every cell is
  deterministic in its config, the resumed rows are bit-identical to
  the ones an uninterrupted run would have written;
* the store is append-only: rows are never updated or deleted, a
  duplicate insert is an error rather than an overwrite, and several
  campaigns can share one store file without interfering.

Schema (``STORE_FORMAT_VERSION`` pins it; an *older* known format is
upgraded in place — every version step so far is purely additive — and
a *newer* format is refused with a typed error rather than
reinterpreted)::

    meta      (key TEXT PRIMARY KEY, value TEXT)
    campaigns (campaign_key TEXT PRIMARY KEY, spec_json TEXT)
    results   (cell_key TEXT PRIMARY KEY, campaign_key TEXT,
               scenario_json TEXT, policy_name TEXT, policy_json TEXT,
               seed INTEGER, metrics_json TEXT)
    best      (family_key TEXT PRIMARY KEY, label TEXT,
               campaign_key TEXT, variant_name TEXT, policy_json TEXT,
               params_json TEXT, objective REAL, objective_json TEXT,
               seeds_json TEXT)

``metrics_json`` is the canonical JSON of
:meth:`repro.metrics.streaming.FleetAccumulator.metrics_row` — the full
shard-invariant signature (counters, sketch bins) plus the derived
waste/read-age metrics.

``results`` is append-only. ``best`` (format 2, the tune layer's
regression-tracking index; see :mod:`repro.fleet.tune`) is the one
deliberate exception: it holds the best-known policy variant per
scenario family and is overwritten only by a strictly better objective
(:meth:`SweepStore.record_best`), so its content is monotone improving
and still deterministic for a deterministic campaign sequence.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Union

from repro.errors import ConfigurationError, ExportError
from repro.sim.trace_cache import _canonical_default

#: Bumped whenever the schema grows; files written by an *older* format
#: upgrade in place on open (all steps so far add tables, never touch
#: rows), files written by a *newer* format are refused with
#: :class:`~repro.errors.ExportError`.
#:
#: Version history: 1 = meta/campaigns/results (PR 9); 2 = + ``best``.
STORE_FORMAT_VERSION = 2

#: Version pin folded into every :func:`cell_key`. Deliberately
#: independent of :data:`STORE_FORMAT_VERSION`: the v1→v2 schema step
#: did not change row content or key derivation, and keeping the key
#: pin at 1 is what lets an upgraded v1 store resume its campaigns —
#: the old rows still match the keys a new build derives. Bump it (and
#: the store version) only when the key derivation itself changes.
CELL_KEY_FORMAT_VERSION = 1


def canonical_json(payload: object) -> str:
    """Canonical (sorted, compact) JSON used for keys and stored rows.

    Dataclasses are serialized via ``asdict``; enum and Path fields use
    the same stable encoding as the trace-cache key, so a policy's
    ``PolicyKind`` hashes identically in both subsystems.
    """
    def _default(value: object) -> object:
        # Dataclasses may sit anywhere in the payload (a campaign spec
        # nests configs inside plain dicts), so the encoder unwraps them
        # wherever it meets one, then falls back to the trace-cache
        # encoding for enums/Paths.
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            return dataclasses.asdict(value)
        return _canonical_default(value)

    try:
        return json.dumps(
            payload,
            sort_keys=True,
            separators=(",", ":"),
            default=_default,
        )
    except TypeError as exc:
        raise ConfigurationError(
            f"sweep configuration is not content-hashable: {exc}"
        ) from exc


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def cell_key(
    scenario: object,
    policy_name: str,
    policy: object,
    faults: object = None,
) -> str:
    """Canonical content hash identifying one sweep cell.

    ``scenario`` is the :class:`~repro.fleet.config.FleetScenarioConfig`
    *with the cell's seed already applied* (the seed is a config field,
    so it needs no separate slot). The fault spec participates because
    it changes every metric; ``None`` and a null spec key identically
    to keep clean campaigns stable.
    """
    if faults is not None and getattr(faults, "is_null", False):
        faults = None
    # The JSON field keeps its historical name "store_format" (with the
    # pinned CELL_KEY_FORMAT_VERSION value) so every key minted by a
    # format-1 build stays byte-identical — see the pin's docstring.
    body = {
        "store_format": CELL_KEY_FORMAT_VERSION,
        "scenario": dataclasses.asdict(scenario),
        "policy_name": policy_name,
        "policy": dataclasses.asdict(policy),
        "faults": None if faults is None else dataclasses.asdict(faults),
    }
    return _sha256(canonical_json(body))


@dataclass(frozen=True)
class SweepRow:
    """One completed sweep cell, exactly as stored."""

    cell_key: str
    campaign_key: str
    scenario_json: str
    policy_name: str
    policy_json: str
    seed: int
    metrics_json: str

    @property
    def scenario(self) -> dict:
        return json.loads(self.scenario_json)

    @property
    def policy(self) -> dict:
        return json.loads(self.policy_json)

    @property
    def metrics(self) -> dict:
        return json.loads(self.metrics_json)

    def as_json(self) -> str:
        """One deterministic JSON line (the ``--dump-rows`` format)."""
        return canonical_json(
            {
                "cell_key": self.cell_key,
                "campaign_key": self.campaign_key,
                "scenario": self.scenario,
                "policy_name": self.policy_name,
                "policy": self.policy,
                "seed": self.seed,
                "metrics": self.metrics,
            }
        )


@dataclass(frozen=True)
class BestRow:
    """Best-known policy variant for one scenario family.

    ``family_key`` hashes everything that makes objectives comparable:
    the scenario minus its seed, the seed set, the objective spec, and
    the fault spec (:func:`repro.fleet.tune.family_key`). ``objective``
    is the scalarized value being minimized; ``objective_json`` records
    the spec it was computed under, so a report never compares numbers
    with different semantics.
    """

    family_key: str
    label: str
    campaign_key: str
    variant_name: str
    policy_json: str
    params_json: str
    objective: float
    objective_json: str
    seeds_json: str

    @property
    def params(self) -> dict:
        return json.loads(self.params_json)

    @property
    def seeds(self) -> list:
        return json.loads(self.seeds_json)

    def as_json(self) -> str:
        """One deterministic JSON line (fixture dumps and reports)."""
        return canonical_json(
            {
                "family_key": self.family_key,
                "label": self.label,
                "campaign_key": self.campaign_key,
                "variant_name": self.variant_name,
                "policy": json.loads(self.policy_json),
                "params": self.params,
                "objective": self.objective,
                "objective_spec": json.loads(self.objective_json),
                "seeds": self.seeds,
            }
        )


def dump_rows(rows: Iterable[SweepRow]) -> str:
    """Render rows as sorted JSONL — the byte-comparable store image.

    Rows sort by ``cell_key``, so two stores holding the same campaign
    dump byte-identically regardless of completion order (fresh vs
    killed-and-resumed runs included).
    """
    return "\n".join(
        row.as_json() for row in sorted(rows, key=lambda r: r.cell_key)
    )


class SweepStore:
    """Append-only sqlite store of sweep results.

    All write failures surface as :class:`~repro.errors.ExportError`
    (the store path is user input, not an internal bug). A file written
    by an older known :data:`STORE_FORMAT_VERSION` upgrades in place on
    open; one written by a newer (or unrecognizable) format raises
    :class:`~repro.errors.ExportError` — this build cannot know what it
    would be reinterpreting.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = path
        try:
            self._conn = sqlite3.connect(str(path))
            self._ensure_schema()
        except sqlite3.Error as exc:
            raise ExportError(
                f"cannot open sweep store {path}: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    def _ensure_schema(self) -> None:
        conn = self._conn
        conn.execute(
            "CREATE TABLE IF NOT EXISTS meta ("
            "key TEXT PRIMARY KEY, value TEXT NOT NULL)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS campaigns ("
            "campaign_key TEXT PRIMARY KEY, spec_json TEXT NOT NULL)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS results ("
            "cell_key TEXT PRIMARY KEY, "
            "campaign_key TEXT NOT NULL, "
            "scenario_json TEXT NOT NULL, "
            "policy_name TEXT NOT NULL, "
            "policy_json TEXT NOT NULL, "
            "seed INTEGER NOT NULL, "
            "metrics_json TEXT NOT NULL)"
        )
        conn.execute(
            "CREATE INDEX IF NOT EXISTS results_campaign "
            "ON results (campaign_key)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS best ("
            "family_key TEXT PRIMARY KEY, "
            "label TEXT NOT NULL, "
            "campaign_key TEXT NOT NULL, "
            "variant_name TEXT NOT NULL, "
            "policy_json TEXT NOT NULL, "
            "params_json TEXT NOT NULL, "
            "objective REAL NOT NULL, "
            "objective_json TEXT NOT NULL, "
            "seeds_json TEXT NOT NULL)"
        )
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'store_format'"
        ).fetchone()
        if row is None:
            conn.execute(
                "INSERT INTO meta (key, value) VALUES ('store_format', ?)",
                (str(STORE_FORMAT_VERSION),),
            )
            conn.commit()
            return
        try:
            found = int(row[0])
        except ValueError:
            found = -1
        if found == STORE_FORMAT_VERSION:
            return
        if 1 <= found < STORE_FORMAT_VERSION:
            # Every step so far only adds tables; the CREATE IF NOT
            # EXISTS statements above are the whole upgrade. Existing
            # rows (and their keys — see CELL_KEY_FORMAT_VERSION) are
            # untouched, so old campaigns stay resumable.
            conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'store_format'",
                (str(STORE_FORMAT_VERSION),),
            )
            conn.commit()
            return
        if found > STORE_FORMAT_VERSION:
            raise ExportError(
                f"sweep store {self._path} uses format {row[0]}, newer "
                f"than this build's format {STORE_FORMAT_VERSION}; "
                f"refusing to reinterpret it"
            )
        raise ExportError(
            f"sweep store {self._path} declares unrecognized format "
            f"{row[0]!r}; this build reads formats "
            f"1..{STORE_FORMAT_VERSION}"
        )

    # ------------------------------------------------------------------
    @property
    def path(self) -> Union[str, Path]:
        return self._path

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SweepStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def register_campaign(self, campaign_key: str, spec_json: str) -> None:
        """Record the campaign spec (idempotent; keyed by its hash)."""
        try:
            self._conn.execute(
                "INSERT OR IGNORE INTO campaigns (campaign_key, spec_json) "
                "VALUES (?, ?)",
                (campaign_key, spec_json),
            )
            self._conn.commit()
        except sqlite3.Error as exc:
            raise ExportError(
                f"cannot write sweep store {self._path}: {exc}"
            ) from exc

    def existing_keys(self, keys: Sequence[str]) -> Set[str]:
        """The subset of ``keys`` already completed in this store."""
        found: Set[str] = set()
        chunk = 500  # stay far under sqlite's bound-variable limit
        for start in range(0, len(keys), chunk):
            part = list(keys[start : start + chunk])
            marks = ",".join("?" * len(part))
            rows = self._conn.execute(
                f"SELECT cell_key FROM results WHERE cell_key IN ({marks})",
                part,
            ).fetchall()
            found.update(key for (key,) in rows)
        return found

    def append(self, row: SweepRow) -> None:
        """Insert one completed cell; a duplicate key is an error."""
        try:
            self._conn.execute(
                "INSERT INTO results (cell_key, campaign_key, scenario_json, "
                "policy_name, policy_json, seed, metrics_json) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    row.cell_key,
                    row.campaign_key,
                    row.scenario_json,
                    row.policy_name,
                    row.policy_json,
                    row.seed,
                    row.metrics_json,
                ),
            )
            self._conn.commit()
        except sqlite3.IntegrityError as exc:
            raise ExportError(
                f"sweep store {self._path} already holds cell "
                f"{row.cell_key[:12]}…: {exc}"
            ) from exc
        except sqlite3.Error as exc:
            raise ExportError(
                f"cannot write sweep store {self._path}: {exc}"
            ) from exc

    def get(self, cell_key: str) -> Optional[SweepRow]:
        """The stored row for one cell key, from any campaign.

        Cell identity is content-addressed, so a row computed by one
        campaign is valid for every other campaign that derives the
        same key — the tune layer leans on this to reuse evaluations.
        """
        row = self._conn.execute(
            "SELECT cell_key, campaign_key, scenario_json, policy_name, "
            "policy_json, seed, metrics_json FROM results "
            "WHERE cell_key = ?",
            (cell_key,),
        ).fetchone()
        return None if row is None else SweepRow(*row)

    def rows(self, campaign_key: Optional[str] = None) -> List[SweepRow]:
        """All rows (of one campaign, if given), ordered by cell key."""
        query = (
            "SELECT cell_key, campaign_key, scenario_json, policy_name, "
            "policy_json, seed, metrics_json FROM results"
        )
        params: tuple = ()
        if campaign_key is not None:
            query += " WHERE campaign_key = ?"
            params = (campaign_key,)
        query += " ORDER BY cell_key"
        return [
            SweepRow(*fields)
            for fields in self._conn.execute(query, params).fetchall()
        ]

    # ------------------------------------------------------------------
    # Best-known variants (the tune layer's regression-tracking index)
    # ------------------------------------------------------------------
    _BEST_COLUMNS = (
        "family_key, label, campaign_key, variant_name, policy_json, "
        "params_json, objective, objective_json, seeds_json"
    )

    def record_best(self, row: BestRow) -> bool:
        """Install ``row`` if it beats the family's stored incumbent.

        Returns ``True`` when the row was written (family absent, or
        ``row.objective`` strictly smaller than the stored one). Ties
        keep the incumbent, so replaying a campaign that rediscovers
        the same optimum leaves the store byte-identical.
        """
        current = self.get_best(row.family_key)
        if current is not None and not row.objective < current.objective:
            return False
        try:
            self._conn.execute(
                f"INSERT OR REPLACE INTO best ({self._BEST_COLUMNS}) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    row.family_key,
                    row.label,
                    row.campaign_key,
                    row.variant_name,
                    row.policy_json,
                    row.params_json,
                    row.objective,
                    row.objective_json,
                    row.seeds_json,
                ),
            )
            self._conn.commit()
        except sqlite3.Error as exc:
            raise ExportError(
                f"cannot write sweep store {self._path}: {exc}"
            ) from exc
        return True

    def get_best(self, family_key: str) -> Optional[BestRow]:
        """The stored incumbent for one scenario family, if any."""
        row = self._conn.execute(
            f"SELECT {self._BEST_COLUMNS} FROM best WHERE family_key = ?",
            (family_key,),
        ).fetchone()
        return None if row is None else BestRow(*row)

    def best_rows(self) -> List[BestRow]:
        """Every family's incumbent, ordered by family key."""
        rows = self._conn.execute(
            f"SELECT {self._BEST_COLUMNS} FROM best ORDER BY family_key"
        ).fetchall()
        return [BestRow(*fields) for fields in rows]

    def __len__(self) -> int:
        (count,) = self._conn.execute("SELECT COUNT(*) FROM results").fetchone()
        return int(count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SweepStore({str(self._path)!r}, rows={len(self)})"
