"""Fleet execution: one proxy, thousands of device bindings, one clock.

A shard is one :class:`~repro.sim.engine.Simulator` carrying a single
:class:`~repro.proxy.proxy.LastHopProxy` with one per-device binding
(compact :class:`~repro.proxy.state.TopicState`) per device, plus one
:class:`~repro.device.link.LastHopLink` / :class:`~repro.device.device.
ClientDevice` pair per device.

The shard replays **four fleet-wide merged streams** (arrivals, rank
changes, reads, network transitions) rather than four streams per
device: the engine's stream heap stays O(1) in the device count, so the
per-event heap cost does not grow with fleet size. The merged streams
are the per-device streams of :func:`~repro.experiments.runner.
register_trace_streams` interleaved by timestamp with device-major,
stable tie-breaking — devices never interact, so the interleaving
cannot change any device's outcome, and the four streams register in
the same relative order as the single-device runner. A one-device fleet
therefore replays the exact event sequence of :func:`~repro.experiments.
runner.run_scenario` on that device's trace, which the differential
tests pin.

Per-device results fold into a :class:`~repro.metrics.streaming.
FleetAccumulator` as they finish; nothing per-device survives the shard,
so parent-side memory is O(shards) no matter how many devices run.

Determinism across sharding: devices never interact (separate topics,
links, fault plans hashed on the device's derived seed), so each
device's outcome depends only on its own trace and plan — not on which
shard ran it or which devices shared its simulator. The accumulator's
integer counters are therefore bit-identical under any ``(shards,
jobs)`` partitioning; float sums merge up to reassociation.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from dataclasses import dataclass
from functools import partial
from typing import Dict, Iterator, List, Optional, Union

import numpy as np

from repro import faults as faults_mod
from repro import obs
from repro.broker.message import Notification
from repro.device.device import ClientDevice
from repro.device.link import LastHopLink
from repro.experiments import parallel
from repro.faults import FaultPlan, FaultSpec
from repro.fleet import dispatch
from repro.fleet.batch import ShardBatchDispatcher
from repro.fleet.config import FleetScenarioConfig
from repro.fleet.workload import FleetWorkload, build_fleet_workload
from repro.metrics.accounting import RunStats
from repro.metrics.streaming import FleetAccumulator, SketchedStats
from repro.proxy.policies import PolicyConfig
from repro.proxy.proxy import LastHopProxy, ProxyConfig
from repro.sim import trace_shm
from repro.sim.engine import Simulator
from repro.sim.rng import derive_seed
from repro.types import EventId, NetworkStatus, TopicId


def device_topic(device: int) -> TopicId:
    """The binding topic of global device ``device``."""
    return TopicId(f"device/{device}")


@dataclass(frozen=True)
class FleetResult:
    """Outcome of one fleet campaign."""

    config: FleetScenarioConfig
    policy: PolicyConfig
    accumulator: FleetAccumulator
    shards: int
    jobs: int

    @property
    def devices(self) -> int:
        return self.accumulator.devices

    @property
    def waste(self) -> float:
        return self.accumulator.waste

    def describe(self) -> str:
        return self.accumulator.describe()


@contextmanager
def _bulk_allocation() -> Iterator[None]:
    """Suspend the cyclic collector while a shard allocates its fleet.

    Wiring N devices allocates ~20 long-lived objects each; with the
    collector enabled, every generation sweep rescans the whole
    (growing) fleet, turning setup quadratic-ish in N. Collection is
    paused for the bulk phase and the prior state restored afterwards —
    the fleet's objects live until the shard ends regardless, so pausing
    changes no outcome, only removes rescans.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _execute_shard(
    workload: FleetWorkload,
    policy: PolicyConfig,
    fault_spec: Optional[FaultSpec] = None,
    link_latency: float = 0.0,
    use_batch: Union[None, bool, str] = None,
) -> FleetAccumulator:
    """Run one shard's devices on one simulator; fold into an accumulator.

    The per-device wiring mirrors :func:`~repro.experiments.runner.
    run_scenario` exactly — ctor order, listener registration order,
    crash timers scheduled before streams — and the merged streams
    preserve each device's within-device event order, so a device's
    statistics are identical whether it runs here or through the
    single-device runner.

    ``use_batch`` picks the dispatch mode (:mod:`repro.fleet.dispatch`):
    the columnar batched fast path (the default) or the scalar
    per-callback oracle. Both produce bit-identical integer metrics.
    """
    config = workload.config
    spec = fault_spec if fault_spec is not None else faults_mod.active_spec()
    obs_ctx = obs.active()
    recorder = None if obs_ctx is None else obs_ctx.recorder
    auditor = None if obs_ctx is None else obs_ctx.auditor
    obs.PROBES.count("fleet-shards")

    with _bulk_allocation():
        return _execute_shard_inner(
            workload, policy, spec, link_latency, recorder, auditor,
            dispatch.resolve(use_batch),
        )


def _execute_shard_inner(
    workload: FleetWorkload,
    policy: PolicyConfig,
    spec: Optional[FaultSpec],
    link_latency: float,
    recorder,
    auditor,
    use_batch: bool,
) -> FleetAccumulator:
    config = workload.config
    acc = FleetAccumulator()
    sim = Simulator()
    duration = config.duration
    # The proxy-wide transport/stats slots back the classic `add_topic`
    # alias only; every fleet binding carries its own.
    proxy = LastHopProxy(
        sim,
        None,
        ProxyConfig(policy=policy),
        RunStats(),
        recorder=recorder,
        auditor=auditor,
    )
    threshold = config.threshold
    base_seed = config.seed
    null_faults = spec is None or spec.is_null
    schedule_at = sim.schedule_at

    topics: List[TopicId] = []
    stats_list: List[SketchedStats] = []
    devices: List[ClientDevice] = []
    links: List[LastHopLink] = []
    states: List = []
    has_plan: List[bool] = []
    perform_reads: List = []
    set_statuses: List = []
    for index in range(workload.devices):
        plan = (
            None
            if null_faults
            else FaultPlan.build(
                spec,
                seed=derive_seed(base_seed, f"device-{workload.lo + index}"),
                duration=duration,
            )
        )
        stats = SketchedStats(
            delay_sketch=acc.read_delay_sketch,
            delay_moments=acc.read_delay_moments,
        )
        topic = device_topic(workload.lo + index)
        link = LastHopLink(
            sim, stats, latency=link_latency, faults=plan, recorder=recorder
        )
        device = ClientDevice(sim, link, stats, faults=plan)
        device.add_topic(topic, threshold)
        state = proxy.add_binding(
            topic, transport=link, stats=stats, rank_threshold=threshold
        )
        device.attach_proxy(proxy)
        link.add_status_listener(partial(proxy.on_topic_network, topic))
        if plan is not None:
            for crash_time in plan.crash_times:
                schedule_at(
                    crash_time,
                    proxy.crash_restart_topic,
                    topic,
                    plan.spec.restart_delay,
                )
        topics.append(topic)
        stats_list.append(stats)
        devices.append(device)
        links.append(link)
        states.append(state)
        has_plan.append(plan is not None)
        perform_reads.append(device.perform_read)
        set_statuses.append(link.set_status)

    if use_batch:
        dispatcher = ShardBatchDispatcher(
            sim=sim,
            workload=workload,
            proxy=proxy,
            policy=policy,
            topics=topics,
            states=states,
            links=links,
            devices=devices,
            stats_list=stats_list,
            perform_reads=perform_reads,
            set_statuses=set_statuses,
            has_plan=has_plan,
            link_latency=link_latency,
            recorder=recorder,
            auditor=auditor,
        )
        dispatcher.register_streams()
    else:
        _register_fleet_streams(
            sim, workload, proxy, topics, perform_reads, set_statuses
        )

    sim.run(until=duration)

    # Final-queue sweep, one per binding: equivalent to
    # ``topic_state(t).queued_event_count()`` / ``device.queue_size(t)``
    # but reading the ranked queues' membership dicts directly — at 10k+
    # bindings the method hops are a measurable slice of the fold.
    states_map = proxy._states
    acc.add_shard(
        stats_list,
        [
            len(st.outgoing._items)
            + len(st.prefetch._items)
            + len(st.holding._items)
            for st in (states_map[topic] for topic in topics)
        ],
        [
            len(device._queues[topic]._items)
            for device, topic in zip(devices, topics)
        ],
    )
    acc.events_processed = sim.events_processed
    obs.PROBES.count("events", sim.events_processed)
    _dismantle_shard(sim, proxy, devices, links)
    return acc


def _dismantle_shard(
    sim: Simulator,
    proxy: LastHopProxy,
    devices: List[ClientDevice],
    links: List[LastHopLink],
) -> None:
    """Break the shard's reference cycles so plain refcounting frees it.

    The device ↔ link ↔ proxy ↔ simulator graph is cyclic (listeners
    hold bound methods, heap events hold states, devices hold the
    proxy); with the cyclic collector suspended for the shard's
    lifetime (:func:`_bulk_allocation`), an unbroken graph would
    survive until a later full GC sweep — which lands in the middle of
    the *next* shard (or benchmark round). Everything the caller needs
    has been folded into the accumulator by now.
    """
    for event in sim._heap:
        stream = event.stream
        if stream is not None:
            # Streams the duration cap left unexhausted still hold the
            # cursor <-> stream cycle the engine breaks at exhaustion.
            stream.entry = None
            event.stream = None
    sim._heap.clear()
    for link in links:
        link._listeners.clear()
        link._device = None
    for device in devices:
        device._proxy = None
    proxy._states.clear()


def _register_fleet_streams(
    sim: Simulator,
    workload: FleetWorkload,
    proxy: LastHopProxy,
    topics: List[TopicId],
    perform_reads: List,
    set_statuses: List,
) -> None:
    """Register the shard's four merged trace streams.

    Equivalent to calling :func:`~repro.experiments.runner.
    register_trace_streams` per device, with all devices' items
    interleaved by timestamp: the stable sorts keep each device's items
    in within-device order, the streams register in the same arrivals →
    rank-changes → reads → network order, and devices are independent,
    so every device observes exactly its single-device event sequence.
    The payoff is the engine heap: four stream cursors total instead of
    four per device.
    """
    n = workload.devices
    duration = workload.config.duration
    on_notification = proxy.on_notification

    acols = workload.arrivals
    didx = np.repeat(np.arange(n), workload.arrival_counts)
    order = np.argsort(acols.times, kind="stable")
    originals: Dict[EventId, Notification] = {}
    arrival_stream = []
    append_arrival = arrival_stream.append
    for d, time, event_id, rank, expires_at in zip(
        didx[order].tolist(),
        acols.times[order].tolist(),
        acols.event_ids[order].tolist(),
        acols.ranks[order].tolist(),
        acols.expires_at[order].tolist(),
    ):
        notification = Notification(
            event_id=EventId(event_id),
            topic=topics[d],
            rank=rank,
            published_at=time,
            # NaN != NaN: the only NaN in the column is the sentinel.
            expires_at=None if expires_at != expires_at else expires_at,
        )
        originals[notification.event_id] = notification
        append_arrival((time, on_notification, (notification,)))
    sim.add_stream(arrival_stream)

    ccols = workload.rank_changes
    order = np.argsort(ccols.times, kind="stable")
    change_stream = []
    for time, event_id, new_rank in zip(
        ccols.times[order].tolist(),
        ccols.event_ids[order].tolist(),
        ccols.new_ranks[order].tolist(),
    ):
        original = originals[EventId(event_id)]
        update = Notification(
            event_id=original.event_id,
            topic=original.topic,
            rank=new_rank,
            published_at=original.published_at,
            expires_at=original.expires_at,
        )
        change_stream.append((time, on_notification, (update,)))
    sim.add_stream(change_stream)

    rcols = workload.reads
    ridx = np.repeat(np.arange(n), workload.read_counts)
    order = np.argsort(rcols.times, kind="stable")
    sim.add_stream(
        [
            (time, perform_reads[d], (topics[d], count))
            for d, time, count in zip(
                ridx[order].tolist(),
                rcols.times[order].tolist(),
                rcols.counts[order].tolist(),
            )
        ]
    )

    ocols = workload.outages
    oidx = np.repeat(np.arange(n), workload.outage_counts)
    # One DOWN per outage start, one UP per end that falls inside the
    # run — the per-device edge rules of Trace.network_transitions. At
    # an equal within-device timestamp an UP (previous interval's end)
    # must precede a DOWN (next interval's start), hence the secondary
    # sort key; cross-device order at equal times is immaterial.
    ev_times = np.concatenate([ocols.starts, ocols.ends])
    ev_dev = np.concatenate([oidx, oidx])
    is_down = np.concatenate(
        [np.ones(ocols.starts.size, bool), np.zeros(ocols.ends.size, bool)]
    )
    keep = np.ones(ev_times.size, dtype=bool)
    keep[ocols.starts.size :] = ocols.ends < duration
    ev_times, ev_dev, is_down = ev_times[keep], ev_dev[keep], is_down[keep]
    order = np.lexsort((is_down, ev_times))
    down, up = NetworkStatus.DOWN, NetworkStatus.UP
    sim.add_stream(
        [
            (time, set_statuses[d], (down if goes_down else up,))
            for time, d, goes_down in zip(
                ev_times[order].tolist(),
                ev_dev[order].tolist(),
                is_down[order].tolist(),
            )
        ]
    )


def _execute_shard_from_shm(
    key: str,
    lo: int,
    hi: int,
    config: FleetScenarioConfig,
    policy: PolicyConfig,
    fault_spec: Optional[FaultSpec],
    link_latency: float,
    use_batch: bool = True,
) -> FleetAccumulator:
    """Worker entry: attach the shard's columns from shared memory.

    A vanished segment (parent unlinked early) degrades to a rebuild:
    generation is deterministic in the config, so ``build_fleet_workload
    (config).shard(lo, hi)`` reproduces the same columns byte-for-byte.
    ``use_batch`` arrives resolved in the parent — the worker process
    must not consult its own (default-initialized) dispatch flag.
    """
    packed = trace_shm.load(key)
    if packed is not None:
        workload = FleetWorkload.from_trace(config, packed)
    else:
        workload = build_fleet_workload(config).shard(lo, hi)
    return _execute_shard(workload, policy, fault_spec, link_latency, use_batch)


def run_fleet(
    config: FleetScenarioConfig,
    policy: Optional[PolicyConfig] = None,
    *,
    shards: int = 1,
    jobs: int = 1,
    faults: Optional[FaultSpec] = None,
    link_latency: float = 0.0,
    workload: Optional[FleetWorkload] = None,
    use_batch: Union[None, bool, str] = None,
) -> FleetResult:
    """Run a whole fleet campaign; results invariant to ``(shards, jobs)``.

    The workload is generated once (vectorized, in the parent) and
    sharded into contiguous device ranges; ``jobs`` worker processes
    execute shards with the columns handed off through shared memory.
    ``faults`` applies the same :class:`FaultSpec` to every device, each
    realizing its own plan from its derived seed; None falls back to the
    process-wide spec (the CLI's ``--faults``). Pass ``workload`` to
    reuse an already-built :func:`build_fleet_workload` result (it must
    match ``config``). ``use_batch`` selects batched (default) or
    scalar shard dispatch (:mod:`repro.fleet.dispatch`); both produce
    bit-identical integer metrics.
    """
    config.validate()
    if policy is None:
        policy = PolicyConfig()
    policy.validate()
    spec = faults if faults is not None else faults_mod.active_spec()
    if workload is None:
        with obs.PROBES.phase("fleet-build"):
            workload = build_fleet_workload(config)
    accumulator = parallel.run_fleet_shards(
        workload,
        policy,
        shards=shards,
        jobs=jobs,
        fault_spec=spec,
        link_latency=link_latency,
        use_batch=dispatch.resolve(use_batch),
    )
    return FleetResult(
        config=config,
        policy=policy,
        accumulator=accumulator,
        shards=shards,
        jobs=jobs,
    )
