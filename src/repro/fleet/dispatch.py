"""Dispatch-mode selection for fleet shard execution.

Every fleet shard can replay its merged event streams two ways:

* ``batch`` (the default) — the columnar fast path: the shard's four
  event kinds merge into **one** batch stream and the engine hands the
  pump (:mod:`repro.fleet.batch`) whole runs of it at a time; the pump
  dispatches each item against the columnar binding state
  (:mod:`repro.fleet.columns`) and falls back to the per-device
  callbacks only where the fast-path guarantees do not hold.
* ``scalar`` — the original one-callback-per-event path, kept as the
  differential oracle: both modes produce bit-identical integer metrics
  (``tests/fleet/test_fleet_batch.py`` pins the equivalence).

This mirrors the ``use_method`` pattern of
:mod:`repro.workload.methods`: a process-wide default plus a
context-manager override for tests and benchmarks.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

from repro.errors import ConfigurationError

BATCH = "batch"
SCALAR = "scalar"

_MODES = (BATCH, SCALAR)

_active: str = BATCH


def active_dispatch() -> str:
    """The process-wide default shard dispatch mode."""
    return _active


def set_dispatch(mode: str) -> None:
    """Set the process-wide default shard dispatch mode."""
    global _active
    if mode not in _MODES:
        raise ConfigurationError(
            f"unknown dispatch mode {mode!r}; expected one of {_MODES}"
        )
    _active = mode


def resolve(use_batch: Union[None, bool, str]) -> bool:
    """Normalize an explicit ``use_batch`` override to a bool.

    ``None`` falls back to the active process-wide default; a string
    must be one of the mode names.
    """
    if use_batch is None:
        return _active == BATCH
    if isinstance(use_batch, bool):
        return use_batch
    if use_batch not in _MODES:
        raise ConfigurationError(
            f"unknown dispatch mode {use_batch!r}; expected one of {_MODES}"
        )
    return use_batch == BATCH


@contextmanager
def use_dispatch(mode: str) -> Iterator[None]:
    """Temporarily switch the default mode (tests and benchmarks)."""
    previous = _active
    set_dispatch(mode)
    try:
        yield
    finally:
        set_dispatch(previous)
