"""Fleet sweep campaigns: policy × heterogeneity grids over a store.

The paper's core results are *trade-off curves* — waste vs. loss as
volume limits, device constraints, and policy parameters vary. A single
fleet campaign (:func:`~repro.fleet.runner.run_fleet`) answers one point
of such a curve; this module runs the whole grid:

* :class:`FleetSweepConfig` grids :class:`~repro.fleet.config.
  FleetScenarioConfig` knobs (``devices``, heterogeneity sigmas,
  ``volume_limits`` mixes, ``threshold``, …) × named policy variants ×
  seeds;
* every ``(scenario, seed)`` cell group builds its fleet workload
  **once** and replays it against every policy variant through the
  existing shard executor (:func:`repro.experiments.parallel.
  run_fleet_policy_batch`) — the PR 3 grouped-sweep shape, lifted to
  fleets: shard columns are published to shared memory once per group,
  not once per policy;
* every completed cell's :meth:`~repro.metrics.streaming.
  FleetAccumulator.metrics_row` lands in an append-only sqlite store
  (:mod:`repro.fleet.store`), keyed by a canonical config hash, so a
  half-finished campaign resumes by skipping completed cells — and the
  resumed rows are bit-identical to an uninterrupted run's.

Loss at fleet scale
-------------------

The paper's loss metric compares *sets* of read message ids against the
on-line baseline (§3.1). Fleet aggregation is O(shards) streaming — the
per-device id sets do not survive the fold — so the sweep summary
reports the **count-based loss**: the relative shortfall of messages
read versus the ``online`` row of the same ``(scenario, seed)`` cell,
``max(0, online_read - read) / online_read``. It equals the paper's
metric whenever the candidate policy's reads are a subset of the
baseline's (the common case: prefetch policies can only miss messages
the on-line policy delivered) and is a lower bound otherwise. Include
the ``online`` preset in the grid to get loss columns; without it the
summary reports waste only.
"""

from __future__ import annotations

import itertools
import json
from collections import OrderedDict
from dataclasses import dataclass, fields, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import faults as faults_mod
from repro.errors import ConfigurationError
from repro.experiments import parallel
from repro.faults import FaultSpec
from repro.fleet import dispatch
from repro.fleet.config import FleetScenarioConfig
from repro.fleet.store import (
    SweepRow,
    SweepStore,
    canonical_json,
    cell_key,
    _sha256,
)
from repro.fleet.workload import build_fleet_workload
from repro.metrics.streaming import FleetAccumulator
from repro.proxy.policies import PolicyConfig

#: Zero-argument policy presets a sweep can name directly. ``buffer``
#: needs a limit, so it is spelled ``buffer:N`` (see
#: :func:`parse_policy_token`).
SWEEP_POLICY_PRESETS: Dict[str, Callable[[], PolicyConfig]] = {
    "online": PolicyConfig.online,
    "on_demand": PolicyConfig.on_demand,
    "rate": PolicyConfig.rate,
    "unified": PolicyConfig.unified,
}

#: Default policy mix: the loss baseline, the zero-waste bound, and the
#: paper's unified algorithm.
DEFAULT_POLICIES = ("online", "on_demand", "unified")

#: The scenario knob the seed axis owns; it cannot double as a grid axis.
_SEED_FIELD = "seed"

_SCENARIO_FIELDS = frozenset(f.name for f in fields(FleetScenarioConfig))


@dataclass(frozen=True)
class PolicyVariant:
    """One named policy point of the sweep grid.

    The name is part of the cell identity (two parameterizations of the
    same preset must not collide) and is how summary tables and the
    loss join refer to the variant, so it must be unique per campaign.
    """

    name: str
    policy: PolicyConfig

    def validate(self) -> None:
        if not self.name:
            raise ConfigurationError("policy variant name must not be empty")
        self.policy.validate()


def parse_policy_token(token: str) -> PolicyVariant:
    """Parse one ``--policies`` token into a named variant.

    ``online`` / ``on_demand`` / ``rate`` / ``unified`` select presets;
    ``buffer:N`` is buffer-based prefetching with static limit ``N``.
    """
    token = token.strip()
    if token in SWEEP_POLICY_PRESETS:
        return PolicyVariant(name=token, policy=SWEEP_POLICY_PRESETS[token]())
    if token.startswith("buffer:"):
        raw = token[len("buffer:"):]
        # Only a bare non-negative integer: int() would also accept
        # "+3", " 3", and "1_0", silently minting variant names that
        # differ from their canonical spelling (and thus distinct store
        # keys for the same policy).
        if not (raw.isascii() and raw.isdigit()):
            raise ConfigurationError(
                f"buffer policy limit must be a bare non-negative "
                f"integer, got {raw!r}"
            )
        return PolicyVariant(
            name=token, policy=PolicyConfig.buffer(prefetch_limit=int(raw))
        )
    raise ConfigurationError(
        f"unknown policy {token!r}; expected one of "
        f"{', '.join(sorted(SWEEP_POLICY_PRESETS))}, or buffer:N"
    )


def policy_preset_constructor(preset: object) -> Callable[..., PolicyConfig]:
    """The :class:`PolicyConfig` constructor behind a preset name.

    The shared face of preset resolution for grid files *and* the tune
    layer (:mod:`repro.fleet.tune` maps its parameter space onto the
    constructor's keyword arguments): ``buffer`` resolves alongside the
    zero-argument presets, anything else is a typed error.
    """
    if preset == "buffer":
        return PolicyConfig.buffer
    if isinstance(preset, str) and preset in SWEEP_POLICY_PRESETS:
        return SWEEP_POLICY_PRESETS[preset]
    raise ConfigurationError(
        f"unknown policy preset {preset!r}; expected one of "
        f"{', '.join(sorted(SWEEP_POLICY_PRESETS))}, or buffer"
    )


def policy_variant_from_spec(spec: object) -> PolicyVariant:
    """Build a variant from a grid-file entry.

    A string is a :func:`parse_policy_token` token; an object is
    ``{"name": ..., "preset": ..., "params": {...}}`` where ``params``
    are keyword arguments of the preset's constructor (e.g.
    ``{"name": "u-delay", "preset": "unified", "params":
    {"delay": 60.0}}``). Without a ``name``, the variant is named by
    the canonical JSON of ``{preset: params}`` — the deterministic
    naming the tune layer relies on for its store keys.
    """
    if isinstance(spec, str):
        return parse_policy_token(spec)
    if not isinstance(spec, dict):
        raise ConfigurationError(
            f"policy spec must be a string or object, got {type(spec).__name__}"
        )
    unknown = set(spec) - {"name", "preset", "params"}
    if unknown:
        raise ConfigurationError(
            f"unknown policy spec keys: {', '.join(sorted(unknown))}"
        )
    preset = spec.get("preset")
    ctor = policy_preset_constructor(preset)
    params = spec.get("params", {})
    if not isinstance(params, dict):
        raise ConfigurationError("policy spec 'params' must be an object")
    try:
        policy = ctor(**params)
    except TypeError as exc:
        raise ConfigurationError(
            f"invalid parameters for policy preset {preset!r}: {exc}"
        ) from exc
    name = spec.get("name")
    if name is None:
        name = preset if not params else canonical_json({preset: params})
    return PolicyVariant(name=str(name), policy=policy)


@dataclass(frozen=True)
class SweepCell:
    """One ``(scenario, seed, policy)`` point of the campaign grid.

    ``scenario`` already carries the cell's seed; ``key`` is its
    canonical store key (:func:`repro.fleet.store.cell_key`).
    """

    scenario: FleetScenarioConfig
    seed: int
    variant: PolicyVariant
    key: str


@dataclass(frozen=True)
class FleetSweepConfig:
    """Full description of one sweep campaign.

    ``axes`` is an ordered tuple of ``(field, values)`` pairs gridding
    :meth:`FleetScenarioConfig.with_changes` knobs; the cartesian
    product is taken in axis order, later axes varying fastest. Seeds
    replace the scenario's ``seed`` field, so they are an axis of their
    own and may not appear in ``axes``.
    """

    base: FleetScenarioConfig
    policies: Tuple[PolicyVariant, ...]
    seeds: Tuple[int, ...] = (0,)
    axes: Tuple[Tuple[str, Tuple[object, ...]], ...] = ()
    faults: Optional[FaultSpec] = None

    def validate(self) -> None:
        if not self.policies:
            raise ConfigurationError("sweep needs at least one policy variant")
        names = [variant.name for variant in self.policies]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ConfigurationError(
                f"duplicate policy variant names: {', '.join(dupes)}"
            )
        for variant in self.policies:
            variant.validate()
        if not self.seeds:
            raise ConfigurationError("sweep needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ConfigurationError("sweep seeds must be unique")
        seen_axes = set()
        for field_name, values in self.axes:
            if field_name == _SEED_FIELD:
                raise ConfigurationError(
                    "the seed axis is spelled via 'seeds', not a scenario axis"
                )
            if field_name not in _SCENARIO_FIELDS:
                raise ConfigurationError(
                    f"unknown scenario axis {field_name!r}; expected a "
                    f"FleetScenarioConfig field"
                )
            if field_name in seen_axes:
                raise ConfigurationError(f"duplicate scenario axis {field_name!r}")
            seen_axes.add(field_name)
            if not values:
                raise ConfigurationError(
                    f"scenario axis {field_name!r} has no values"
                )
        for scenario in self.scenario_grid():
            scenario.validate()

    # ------------------------------------------------------------------
    def scenario_grid(self) -> List[FleetScenarioConfig]:
        """Every scenario variant, in deterministic grid order."""
        if not self.axes:
            return [self.base]
        names = [name for name, _ in self.axes]
        grid = []
        for combo in itertools.product(*(values for _, values in self.axes)):
            changes = {
                name: tuple(value) if isinstance(value, list) else value
                for name, value in zip(names, combo)
            }
            grid.append(self.base.with_changes(**changes))
        return grid

    def cells(self) -> List[SweepCell]:
        """The full campaign grid: scenario-major, then seed, then policy.

        The order is deterministic and the grouping contract of
        :func:`run_fleet_sweep`: all policy cells of one ``(scenario,
        seed)`` are adjacent, so one workload build serves them all.
        """
        cells = []
        for scenario in self.scenario_grid():
            for seed in self.seeds:
                seeded = scenario.with_changes(seed=seed)
                for variant in self.policies:
                    cells.append(
                        SweepCell(
                            scenario=seeded,
                            seed=seed,
                            variant=variant,
                            key=cell_key(
                                seeded, variant.name, variant.policy,
                                faults=self.faults,
                            ),
                        )
                    )
        return cells

    def spec_json(self) -> str:
        """Canonical JSON of the whole campaign spec."""
        return canonical_json(
            {
                "base": self.base,
                "axes": [[name, list(values)] for name, values in self.axes],
                "policies": [
                    {"name": v.name, "policy": v.policy} for v in self.policies
                ],
                "seeds": list(self.seeds),
                "faults": self.faults,
            }
        )

    def campaign_key(self) -> str:
        return _sha256(self.spec_json())


@dataclass(frozen=True)
class SweepOutcome:
    """What one :func:`run_fleet_sweep` invocation did."""

    config: FleetSweepConfig
    campaign_key: str
    #: Cells simulated by this invocation.
    computed: int
    #: Cells skipped because the store already held them (``resume``).
    skipped: int
    #: Cells left for a later resume (``max_cells`` stopped the run).
    remaining: int
    #: Every row of this campaign currently in the store.
    rows: Tuple[SweepRow, ...]


def run_fleet_sweep(
    config: FleetSweepConfig,
    store: SweepStore,
    *,
    shards: int = 1,
    jobs: int = 1,
    resume: bool = False,
    max_cells: Optional[int] = None,
    use_batch: object = None,
    link_latency: float = 0.0,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepOutcome:
    """Run (or resume) a sweep campaign into ``store``.

    ``shards``/``jobs`` are pure throughput levers: every stored metric
    is invariant to them (integer entries bit-identical, floats to the
    documented reassociation). ``resume`` skips cells the store already
    holds; without it, a store that already contains campaign cells is
    refused so an accidental re-run cannot silently mix state.
    ``max_cells`` stops after that many newly computed cells (the
    campaign stays resumable — the kill-and-resume smoke test and
    incremental runs use this).
    """
    config.validate()
    if config.faults is None:
        # The ambient process-wide spec (the CLI's --faults, worker
        # inits) changes every metric, so it must participate in the
        # cell identity too — fold it into the config before keying.
        ambient = faults_mod.active_spec()
        if ambient is not None:
            config = replace(config, faults=ambient)
    if max_cells is not None and max_cells < 1:
        raise ConfigurationError(f"max_cells must be >= 1, got {max_cells}")
    use_batch_resolved = dispatch.resolve(use_batch)

    campaign = config.campaign_key()
    store.register_campaign(campaign, config.spec_json())
    cells = config.cells()
    done = store.existing_keys([cell.key for cell in cells])
    if done and not resume:
        raise ConfigurationError(
            f"store already holds {len(done)} of this campaign's "
            f"{len(cells)} cells; pass resume=True (--resume) to skip "
            f"them and continue"
        )

    groups: "OrderedDict[FleetScenarioConfig, List[SweepCell]]" = OrderedDict()
    for cell in cells:
        groups.setdefault(cell.scenario, []).append(cell)

    computed = 0
    skipped = len(done)
    budget = len(cells) if max_cells is None else max_cells
    for scenario, group in groups.items():
        pending = [cell for cell in group if cell.key not in done]
        if not pending:
            continue
        if computed >= budget:
            break
        pending = pending[: budget - computed]
        workload = build_fleet_workload(scenario)
        accumulators = parallel.run_fleet_policy_batch(
            workload,
            [cell.variant.policy for cell in pending],
            shards=shards,
            jobs=jobs,
            fault_spec=config.faults,
            link_latency=link_latency,
            use_batch=use_batch_resolved,
        )
        for cell, accumulator in zip(pending, accumulators):
            store.append(_build_row(campaign, cell, accumulator))
            computed += 1
            if progress is not None:
                progress(
                    f"[{computed + skipped}/{len(cells)}] "
                    f"devices={cell.scenario.devices} seed={cell.seed} "
                    f"policy={cell.variant.name}"
                )
    remaining = len(cells) - skipped - computed
    return SweepOutcome(
        config=config,
        campaign_key=campaign,
        computed=computed,
        skipped=skipped,
        remaining=remaining,
        rows=tuple(store.rows(campaign)),
    )


def _build_row(
    campaign: str, cell: SweepCell, accumulator: FleetAccumulator
) -> SweepRow:
    return SweepRow(
        cell_key=cell.key,
        campaign_key=campaign,
        scenario_json=canonical_json(cell.scenario),
        policy_name=cell.variant.name,
        policy_json=canonical_json(cell.variant.policy),
        seed=cell.seed,
        metrics_json=canonical_json(accumulator.metrics_row()),
    )


# ----------------------------------------------------------------------
# Pareto summary: waste vs. loss per scenario family
# ----------------------------------------------------------------------

#: Policy name whose rows anchor the count-based loss join.
LOSS_BASELINE = "online"


@dataclass(frozen=True)
class PolicyPoint:
    """One policy's averaged outcome within a scenario family."""

    name: str
    waste: float
    #: None when the campaign carries no ``online`` baseline rows.
    loss: Optional[float]
    mean_read_age: float
    forwarded: int
    messages_read: int
    #: On the Pareto front of (waste, loss) within the family.
    on_front: bool


@dataclass(frozen=True)
class FamilySummary:
    """All policies of one scenario family (scenario minus seed)."""

    label: str
    seeds: Tuple[int, ...]
    policies: Tuple[PolicyPoint, ...]


def summarize_pareto(
    config: FleetSweepConfig, rows: Sequence[SweepRow]
) -> List[FamilySummary]:
    """Per-family waste/loss averages with Pareto-front flags.

    A *family* is one scenario variant of the grid, aggregated across
    the seed axis. Loss joins each policy row against the family's
    ``online`` row of the same seed (see the module docstring for the
    count-based definition); families and policies keep campaign grid
    order, so the summary is deterministic.
    """
    by_key: Dict[str, SweepRow] = {row.cell_key: row for row in rows}
    labels = _family_labels(config)
    summaries = []
    for scenario, label in zip(config.scenario_grid(), labels):
        per_policy: "OrderedDict[str, List[SweepRow]]" = OrderedDict()
        baseline_reads: Dict[int, int] = {}
        seeds_present: List[int] = []
        for seed in config.seeds:
            seeded = scenario.with_changes(seed=seed)
            seed_rows = []
            for variant in config.policies:
                row = by_key.get(
                    cell_key(seeded, variant.name, variant.policy,
                             faults=config.faults)
                )
                if row is None:
                    continue
                seed_rows.append((variant.name, row))
                if variant.name == LOSS_BASELINE:
                    baseline_reads[seed] = int(row.metrics["messages_read"])
            if seed_rows:
                seeds_present.append(seed)
            for name, row in seed_rows:
                per_policy.setdefault(name, []).append(row)
        if not per_policy:
            continue
        points = []
        for name, policy_rows in per_policy.items():
            wastes = [float(row.metrics["waste"]) for row in policy_rows]
            ages = [float(row.metrics["mean_read_age"]) for row in policy_rows]
            losses: List[float] = []
            for row in policy_rows:
                base = baseline_reads.get(row.seed)
                if base is None:
                    continue
                read = int(row.metrics["messages_read"])
                losses.append(max(0, base - read) / base if base else 0.0)
            points.append(
                PolicyPoint(
                    name=name,
                    waste=sum(wastes) / len(wastes),
                    loss=(sum(losses) / len(losses)) if losses else None,
                    mean_read_age=sum(ages) / len(ages),
                    forwarded=sum(
                        int(row.metrics["forwarded"]) for row in policy_rows
                    ),
                    messages_read=sum(
                        int(row.metrics["messages_read"]) for row in policy_rows
                    ),
                    on_front=False,
                )
            )
        summaries.append(
            FamilySummary(
                label=label,
                seeds=tuple(seeds_present),
                policies=tuple(_flag_pareto_front(points)),
            )
        )
    return summaries


def _flag_pareto_front(points: List[PolicyPoint]) -> List[PolicyPoint]:
    """Mark the non-dominated (waste, loss) points.

    A point dominates another when both its waste and its loss are no
    worse and at least one is strictly better. Without loss columns
    (no ``online`` rows) the front degenerates to the minimum-waste
    points.
    """

    def coords(point: PolicyPoint) -> Tuple[float, float]:
        return (point.waste, 0.0 if point.loss is None else point.loss)

    flagged = []
    for point in points:
        w, l = coords(point)
        dominated = any(
            (ow <= w and ol <= l) and (ow < w or ol < l)
            for ow, ol in (coords(o) for o in points if o is not point)
        )
        flagged.append(replace(point, on_front=not dominated))
    return flagged


def _family_labels(config: FleetSweepConfig) -> List[str]:
    """Human labels for the scenario grid: the varying axis values."""
    grid = config.scenario_grid()
    if not config.axes:
        return ["base scenario"]
    names = [name for name, _ in config.axes]
    labels = []
    for scenario in grid:
        parts = [f"{name}={getattr(scenario, name)}" for name in names]
        labels.append(", ".join(parts))
    return labels


def render_summary_text(summaries: Sequence[FamilySummary]) -> str:
    """Plain-text Pareto summary, one table per scenario family."""
    if not summaries:
        return "no completed cells"
    lines = []
    for family in summaries:
        lines.append(f"scenario family: {family.label} "
                     f"(seeds {', '.join(map(str, family.seeds))})")
        has_loss = any(p.loss is not None for p in family.policies)
        width = max(len(p.name) for p in family.policies)
        width = max(width, len("policy"))
        loss_col = "   loss%" if has_loss else ""
        lines.append(f"  {'policy':<{width}}  waste%{loss_col}  "
                     f"read-age(s)  front")
        for point in family.policies:
            loss = (
                f"  {100 * point.loss:6.2f}" if point.loss is not None
                else ("      --" if has_loss else "")
            )
            front = "*" if point.on_front else ""
            lines.append(
                f"  {point.name:<{width}}  {100 * point.waste:6.2f}{loss}  "
                f"{point.mean_read_age:11.0f}  {front:>5}"
            )
        lines.append("")
    lines.append(
        "front: not dominated on (waste, loss); loss is the count-based "
        f"shortfall vs the {LOSS_BASELINE!r} rows (see README)."
    )
    return "\n".join(lines)


def render_summary_json(summaries: Sequence[FamilySummary]) -> str:
    """JSON Pareto summary (stable key order)."""
    payload = [
        {
            "family": family.label,
            "seeds": list(family.seeds),
            "policies": [
                {
                    "name": point.name,
                    "waste": point.waste,
                    "loss": point.loss,
                    "mean_read_age": point.mean_read_age,
                    "forwarded": point.forwarded,
                    "messages_read": point.messages_read,
                    "on_front": point.on_front,
                }
                for point in family.policies
            ],
        }
        for family in summaries
    ]
    return json.dumps(payload, indent=2, sort_keys=True)
