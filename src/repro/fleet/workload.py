"""Vectorized fleet workload generation.

One pass of batched numpy draws produces the traces of every device in
the fleet at once, stored as device-major concatenated columns plus
per-device counts. The cost is O(total events) in a handful of vector
operations — no per-device generator loop — which is what makes 100k+
device fleets affordable (single-device :func:`~repro.workload.scenario.
build_trace` costs ~0.6 ms per device in generator overhead alone).

The distributions mirror the single-device generators in shape:

* arrivals — per-device homogeneous Poisson processes whose rates are
  the population mean scaled by lognormal mean-1 multipliers; ranks,
  expirations, and lifetimes drawn exactly like
  :mod:`repro.workload.arrivals`;
* reads — per-device Poisson read counts placed inside daily awake
  windows (paper §5: 16–17 h, jittered wake), with per-device wake-hour
  offsets and a per-device volume limit (Max) from the configured mix;
* outages — per-device alternating-renewal-style down periods with
  lognormal durations around a per-device downtime fraction;
* rank changes — per-arrival demotion/boost rolls with exponential
  detection delays, exactly like :mod:`repro.workload.ranks`.

Every device's slice is a valid, self-consistent
:class:`~repro.sim.trace.Trace` (:meth:`FleetWorkload.device_trace`),
so the fleet runner replays devices through the same stream-registration
code as the single-device runner. Sharding (:meth:`FleetWorkload.shard`)
slices the columns; generation happens once in the parent, so results
cannot depend on the shard count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.fleet.config import FleetScenarioConfig
from repro.sim.rng import RandomSource, derive_seed
from repro.sim.trace import (
    ArrivalColumns,
    NEVER_EXPIRES,
    OutageColumns,
    RankChangeColumns,
    ReadColumns,
    Trace,
    TraceColumns,
)
from repro.units import AWAKE_HOURS_MAX, AWAKE_HOURS_MIN, DAY, HOUR
from repro.workload.arrivals import _vector_lifetimes
from repro.workload.ranks import MAX_RANK

#: Per-device downtime fractions are clamped here so every device keeps
#: *some* connectivity (a fully dark device would never drain).
MAX_DEVICE_DOWNTIME: float = 0.95


def _lognormal_mean1(
    gen: "np.random.Generator", sigma: float, size: int
) -> np.ndarray:
    """Lognormal multipliers with arithmetic mean 1 (sigma 0 = all ones)."""
    if sigma <= 0.0:
        return np.ones(size)
    return gen.lognormal(-0.5 * sigma * sigma, sigma, size=size)


def _offsets(counts: np.ndarray) -> np.ndarray:
    return np.concatenate(([0], np.cumsum(counts))).astype(np.int64)


@dataclass
class FleetWorkload:
    """Device-major concatenated trace columns for a (slice of a) fleet.

    ``lo`` is the global index of the first device in this slice — shard
    slices keep global device numbering so topic names, per-device fault
    seeds, and event ids are identical under any partitioning.
    """

    config: FleetScenarioConfig
    lo: int
    devices: int
    arrivals: ArrivalColumns
    arrival_counts: np.ndarray
    reads: ReadColumns
    read_counts: np.ndarray
    outages: OutageColumns
    outage_counts: np.ndarray
    rank_changes: RankChangeColumns
    change_counts: np.ndarray
    #: Per-device volume limit (the subscription Max).
    limits: np.ndarray
    _offset_cache: Dict[str, np.ndarray] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    def _stream_offsets(self, name: str, counts: np.ndarray) -> np.ndarray:
        cached = self._offset_cache.get(name)
        if cached is None:
            cached = _offsets(counts)
            self._offset_cache[name] = cached
        return cached

    @property
    def total_events(self) -> int:
        """Trace records across all four streams of this slice."""
        return int(
            self.arrival_counts.sum()
            + self.read_counts.sum()
            + self.outage_counts.sum()
            + self.change_counts.sum()
        )

    def device_trace(self, index: int) -> Trace:
        """The :class:`Trace` of one device (local ``index`` in the slice).

        The metadata carries the device's derived fault seed
        (``derive_seed(config.seed, "device-<d>")``), so
        :class:`~repro.faults.FaultPlan` realizations hash on the device
        identity — independent of shard layout and of every other
        device.
        """
        if not 0 <= index < self.devices:
            raise ConfigurationError(
                f"device index {index} outside slice of {self.devices}"
            )
        a = self._stream_offsets("arrivals", self.arrival_counts)
        r = self._stream_offsets("reads", self.read_counts)
        o = self._stream_offsets("outages", self.outage_counts)
        c = self._stream_offsets("changes", self.change_counts)
        cols = TraceColumns(
            arrivals=ArrivalColumns(
                times=self.arrivals.times[a[index] : a[index + 1]],
                event_ids=self.arrivals.event_ids[a[index] : a[index + 1]],
                ranks=self.arrivals.ranks[a[index] : a[index + 1]],
                expires_at=self.arrivals.expires_at[a[index] : a[index + 1]],
            ),
            reads=ReadColumns(
                times=self.reads.times[r[index] : r[index + 1]],
                counts=self.reads.counts[r[index] : r[index + 1]],
            ),
            outages=OutageColumns(
                starts=self.outages.starts[o[index] : o[index + 1]],
                ends=self.outages.ends[o[index] : o[index + 1]],
            ),
            rank_changes=RankChangeColumns(
                times=self.rank_changes.times[c[index] : c[index + 1]],
                event_ids=self.rank_changes.event_ids[c[index] : c[index + 1]],
                new_ranks=self.rank_changes.new_ranks[c[index] : c[index + 1]],
            ),
        )
        device = self.lo + index
        return Trace(
            duration=self.config.duration,
            columns=cols,
            metadata={
                "seed": derive_seed(self.config.seed, f"device-{device}"),
                "device": device,
                "max_per_read": int(self.limits[index]),
                "threshold": self.config.threshold,
            },
        )

    def shard(self, lo: int, hi: int) -> "FleetWorkload":
        """Slice devices ``[lo, hi)`` of this workload (zero-copy views)."""
        if not 0 <= lo < hi <= self.devices:
            raise ConfigurationError(
                f"shard [{lo}, {hi}) outside fleet of {self.devices} devices"
            )
        a = self._stream_offsets("arrivals", self.arrival_counts)
        r = self._stream_offsets("reads", self.read_counts)
        o = self._stream_offsets("outages", self.outage_counts)
        c = self._stream_offsets("changes", self.change_counts)
        return FleetWorkload(
            config=self.config,
            lo=self.lo + lo,
            devices=hi - lo,
            arrivals=ArrivalColumns(
                times=self.arrivals.times[a[lo] : a[hi]],
                event_ids=self.arrivals.event_ids[a[lo] : a[hi]],
                ranks=self.arrivals.ranks[a[lo] : a[hi]],
                expires_at=self.arrivals.expires_at[a[lo] : a[hi]],
            ),
            arrival_counts=self.arrival_counts[lo:hi],
            reads=ReadColumns(
                times=self.reads.times[r[lo] : r[hi]],
                counts=self.reads.counts[r[lo] : r[hi]],
            ),
            read_counts=self.read_counts[lo:hi],
            outages=OutageColumns(
                starts=self.outages.starts[o[lo] : o[hi]],
                ends=self.outages.ends[o[lo] : o[hi]],
            ),
            outage_counts=self.outage_counts[lo:hi],
            rank_changes=RankChangeColumns(
                times=self.rank_changes.times[c[lo] : c[hi]],
                event_ids=self.rank_changes.event_ids[c[lo] : c[hi]],
                new_ranks=self.rank_changes.new_ranks[c[lo] : c[hi]],
            ),
            change_counts=self.change_counts[lo:hi],
            limits=self.limits[lo:hi],
        )

    # ------------------------------------------------------------------
    # Shared-memory handoff (rides the PR-6 trace segment format)
    # ------------------------------------------------------------------
    def to_trace(self) -> Trace:
        """Pack this slice as one :class:`Trace` for the shm handoff.

        The concatenated columns are exactly the eleven arrays the
        :mod:`repro.sim.trace_shm` segment format carries; the
        per-device counts and limits ride in the JSON metadata header.
        The packed trace is *not* a valid single-device trace (streams
        are device-major, not globally time-sorted) and must only be
        unpacked with :meth:`from_trace`.
        """
        return Trace(
            duration=self.config.duration,
            columns=TraceColumns(
                arrivals=self.arrivals,
                reads=self.reads,
                outages=self.outages,
                rank_changes=self.rank_changes,
            ),
            metadata={
                "fleet_lo": self.lo,
                "fleet_devices": self.devices,
                "arrival_counts": self.arrival_counts.tolist(),
                "read_counts": self.read_counts.tolist(),
                "outage_counts": self.outage_counts.tolist(),
                "change_counts": self.change_counts.tolist(),
                "limits": self.limits.tolist(),
            },
        )

    @classmethod
    def from_trace(cls, config: FleetScenarioConfig, trace: Trace) -> "FleetWorkload":
        """Unpack a :meth:`to_trace` segment attached in a worker."""
        meta = trace.metadata
        cols = trace.columns
        return cls(
            config=config,
            lo=int(meta["fleet_lo"]),
            devices=int(meta["fleet_devices"]),
            arrivals=cols.arrivals,
            arrival_counts=np.asarray(meta["arrival_counts"], dtype=np.int64),
            reads=cols.reads,
            read_counts=np.asarray(meta["read_counts"], dtype=np.int64),
            outages=cols.outages,
            outage_counts=np.asarray(meta["outage_counts"], dtype=np.int64),
            rank_changes=cols.rank_changes,
            change_counts=np.asarray(meta["change_counts"], dtype=np.int64),
            limits=np.asarray(meta["limits"], dtype=np.int64),
        )


def shard_bounds(devices: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous device ranges for ``shards`` near-equal shards.

    Empty shards (more shards than devices) are dropped, so every
    returned range is non-empty; concatenated ranges cover ``[0,
    devices)`` exactly.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be at least 1, got {shards}")
    bounds = []
    for s in range(shards):
        lo = s * devices // shards
        hi = (s + 1) * devices // shards
        if hi > lo:
            bounds.append((lo, hi))
    return bounds


def build_fleet_workload(config: FleetScenarioConfig) -> FleetWorkload:
    """Generate every device's trace columns in one vectorized pass.

    Deterministic in ``config`` (all draws come from named substreams of
    ``config.seed``); generation never depends on how the result is
    later sharded.
    """
    config.validate()
    rng = RandomSource(config.seed)
    n = config.devices
    duration = config.duration

    # -- per-device knobs ----------------------------------------------
    rate_mult = _lognormal_mean1(
        rng.spawn_numpy("fleet:device-rates"), config.rate_sigma, n
    )
    read_mult = _lognormal_mean1(
        rng.spawn_numpy("fleet:read-rates"), config.read_rate_sigma, n
    )
    limit_mix = np.asarray(config.volume_limits, dtype=np.int64)
    limits = limit_mix[
        rng.spawn_numpy("fleet:volume-limits").integers(0, limit_mix.size, size=n)
    ]
    wake_offsets = rng.spawn_numpy("fleet:wake-offsets").uniform(
        -config.wake_hour_spread, config.wake_hour_spread, size=n
    )
    down_frac = np.clip(
        config.outages.downtime_fraction
        * _lognormal_mean1(
            rng.spawn_numpy("fleet:outage-severity"), config.downtime_sigma, n
        ),
        0.0,
        MAX_DEVICE_DOWNTIME,
    )

    # -- arrivals -------------------------------------------------------
    # A homogeneous Poisson process on [0, duration) is Poisson-many
    # events at sorted uniform positions; the per-device rates scale the
    # population mean by the device's multiplier.
    a_gen = rng.spawn_numpy("fleet:arrivals")
    arrival_counts = a_gen.poisson(
        config.arrivals.events_per_day / DAY * duration * rate_mult
    ).astype(np.int64)
    total = int(arrival_counts.sum())
    device_idx = np.repeat(np.arange(n), arrival_counts)
    times = a_gen.random(total) * duration
    # device_idx is already device-major; lexsort only orders times
    # within each device block.
    times = times[np.lexsort((times, device_idx))]
    ranks = config.arrivals.rank.draw_array(a_gen, total)
    expires_at = np.full(total, NEVER_EXPIRES)
    if config.arrivals.expiring_fraction > 0 and total:
        expiring = a_gen.random(total) < config.arrivals.expiring_fraction
        n_expiring = int(expiring.sum())
        if n_expiring:
            expires_at[expiring] = times[expiring] + _vector_lifetimes(
                config.arrivals, a_gen, n_expiring
            )
    # Ids assigned after the sort: globally unique, device-major, and
    # strictly increasing with time within every device.
    event_ids = np.arange(total, dtype=np.int64)
    arrivals = ArrivalColumns.build(times, event_ids, ranks, expires_at)

    # -- reads ----------------------------------------------------------
    # Poisson-many reads per device over the run, each placed inside a
    # uniformly chosen day's awake window (16–17 h starting at the
    # device's offset wake hour) — the same daily structure as the
    # single-device generator, with per-device rates and wake offsets.
    r_gen = rng.spawn_numpy("fleet:reads")
    n_days = int(math.ceil(duration / DAY))
    raw_counts = r_gen.poisson(
        config.reads.reads_per_day / DAY * duration * read_mult
    ).astype(np.int64)
    total_r = int(raw_counts.sum())
    ridx = np.repeat(np.arange(n), raw_counts)
    days = r_gen.integers(0, n_days, size=total_r)
    awake = (
        AWAKE_HOURS_MIN + r_gen.random(total_r) * (AWAKE_HOURS_MAX - AWAKE_HOURS_MIN)
    ) * HOUR
    read_times = (
        days * DAY
        + (config.reads.wake_hour + wake_offsets[ridx]) * HOUR
        + r_gen.random(total_r) * awake
    )
    keep = (read_times >= 0.0) & (read_times < duration)
    ridx, read_times = ridx[keep], read_times[keep]
    order = np.lexsort((read_times, ridx))
    ridx, read_times = ridx[order], read_times[order]
    read_counts = np.bincount(ridx, minlength=n).astype(np.int64)
    reads = ReadColumns.build(read_times, limits[ridx])

    # -- outages --------------------------------------------------------
    outages, outage_counts = _generate_outages(
        config, rng.spawn_numpy("fleet:outages"), down_frac
    )

    # -- rank changes ---------------------------------------------------
    rank_changes, change_counts = _generate_rank_changes(
        config, rng.spawn_numpy("fleet:rank-changes"),
        device_idx, times, event_ids, ranks,
    )

    return FleetWorkload(
        config=config,
        lo=0,
        devices=n,
        arrivals=arrivals,
        arrival_counts=arrival_counts,
        reads=reads,
        read_counts=read_counts,
        outages=outages,
        outage_counts=outage_counts,
        rank_changes=rank_changes,
        change_counts=change_counts,
        limits=limits,
    )


def _generate_outages(
    config: FleetScenarioConfig,
    gen: "np.random.Generator",
    down_frac: np.ndarray,
) -> Tuple[OutageColumns, np.ndarray]:
    """Per-device outage intervals, merged within each device.

    Poisson-many down periods per device with lognormal durations whose
    mean realizes the device's downtime fraction over the mean outage
    cycle. Intra-device overlap is merged with the standard sorted-
    interval sweep, run across all devices at once by lifting intervals
    into disjoint per-device bands (device * 2 * duration): grouping
    decisions happen in the lifted coordinates (bands never touch), the
    merged endpoints are taken from the originals, so no precision is
    lost to the lift.
    """
    n = config.devices
    duration = config.duration
    zero = np.zeros(n, dtype=np.int64)
    if config.outages.downtime_fraction <= 0.0:
        return OutageColumns.empty(), zero
    cycle = DAY / config.outages.outages_per_day
    counts = gen.poisson(np.full(n, duration / cycle)).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return OutageColumns.empty(), zero
    oidx = np.repeat(np.arange(n), counts)
    starts = gen.random(total) * duration
    mean_down = down_frac[oidx] * cycle
    sigma = config.outages.duration_sigma
    if sigma > 0:
        # Lognormal parameterized by its arithmetic mean, matching the
        # single-device generator.
        mu = np.log(np.maximum(mean_down, 1e-300)) - 0.5 * sigma * sigma
        downs = gen.lognormal(mu, sigma)
    else:
        downs = mean_down
    ends = np.minimum(starts + downs, duration)
    positive = ends > starts
    oidx, starts, ends = oidx[positive], starts[positive], ends[positive]
    order = np.lexsort((starts, oidx))
    oidx, starts, ends = oidx[order], starts[order], ends[order]
    if starts.size == 0:
        return OutageColumns.empty(), zero
    # Lift into per-device bands so one accumulate covers the fleet.
    shift = oidx.astype(np.float64) * (2.0 * duration)
    running_end = np.maximum.accumulate(ends + shift)
    group_head = np.empty(starts.size, dtype=bool)
    group_head[0] = True
    group_head[1:] = (starts[1:] + shift[1:]) > running_end[:-1]
    heads = np.flatnonzero(group_head)
    merged_starts = starts[heads]
    merged_ends = np.maximum.reduceat(ends, heads)
    outage_counts = np.bincount(oidx[heads], minlength=n).astype(np.int64)
    return OutageColumns.build(merged_starts, merged_ends), outage_counts


def _generate_rank_changes(
    config: FleetScenarioConfig,
    gen: "np.random.Generator",
    device_idx: np.ndarray,
    times: np.ndarray,
    event_ids: np.ndarray,
    ranks: np.ndarray,
) -> Tuple[RankChangeColumns, np.ndarray]:
    """Demotions/boosts for the fleet's arrivals (shape of
    :mod:`repro.workload.ranks`, batched across devices)."""
    n = config.devices
    zero = np.zeros(n, dtype=np.int64)
    rc = config.rank_changes
    if not rc.enabled or times.size == 0:
        return RankChangeColumns.empty(), zero
    rolls = gen.random(times.size)
    dropped = rolls < rc.drop_fraction
    boosted = ~dropped & (rolls < rc.drop_fraction + rc.boost_fraction)
    changed = np.flatnonzero(dropped | boosted)
    if not changed.size:
        return RankChangeColumns.empty(), zero
    new_ranks = np.minimum(MAX_RANK, ranks[changed] + rc.boost_amount)
    drop_positions = dropped[changed]
    n_dropped = int(drop_positions.sum())
    if n_dropped:
        new_ranks[drop_positions] = gen.uniform(
            rc.drop_to_low, rc.drop_to_high, size=n_dropped
        )
    change_times = times[changed] + gen.exponential(
        rc.change_delay_mean, size=changed.size
    )
    observed = change_times < config.duration
    cidx = device_idx[changed][observed]
    change_times = change_times[observed]
    changed_ids = event_ids[changed][observed]
    new_ranks = new_ranks[observed]
    order = np.lexsort((change_times, cidx))
    change_counts = np.bincount(cidx, minlength=n).astype(np.int64)
    return (
        RankChangeColumns.build(
            change_times[order], changed_ids[order], new_ranks[order]
        ),
        change_counts,
    )
