"""Columnar mirror of the hot per-binding fleet state.

A fleet shard keeps its authoritative per-device state in slotted
Python objects (:class:`~repro.proxy.state.TopicState`,
:class:`~repro.device.link.LastHopLink`, :class:`~repro.device.device.
ClientDevice`). The batch dispatcher additionally mirrors the fields it
touches on every event into contiguous numpy arrays indexed by *local*
device id, so per-event eligibility checks are flat array reads and
whole-shard questions ("who is online?", "who has prefetch room?") are
single vectorized masks instead of 100k attribute walks.

Write-through invariants (pinned by :meth:`FleetColumns.verify_sync`
and the differential suite):

* ``network``, ``queue_size`` and ``prefetch_limit`` are **exact**
  mirrors: every code path that mutates the authoritative field either
  updates the column in the same step (the fused fast paths) or is
  followed by :meth:`~repro.fleet.batch.ShardBatchDispatcher.resync`
  (every scalar fallback).
* ``proxy_queued`` is a **conservative upper bound**: fused paths keep
  it exact, but dynamic expiration timers (which fire outside the
  pumps) may shrink the real queues first. Stale-high is safe — it only
  sends the next READ/UP event for that device down the scalar path,
  which resyncs.
* ``next_expiry`` is a **conservative lower bound** on the earliest
  ``expires_at`` queued at the proxy (``inf`` when nothing expiring is
  queued); it may point at an already-removed event, never past a live
  one.
* ``scalar_only`` is sticky-conservative: it is set the moment a
  binding leaves fast-path territory (fault plan attached, crashed,
  pending retractions, adaptive delay armed by rank drops) and only
  cleared by a resync that re-verifies every fast-path precondition.

``volume_limit`` and ``wake_phase`` are static per-device heterogeneity
knobs (the subscription Max and the wake-window offset), carried here
so shard-level masks can combine them with the dynamic state; the wake
offsets are re-drawn from the same named substream the workload builder
used, which reproduces them bit-for-bit without widening the
shared-memory trace format.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.fleet.workload import FleetWorkload
from repro.sim.rng import RandomSource
from repro.types import NetworkStatus


class FleetColumns:
    """Hot per-binding fields as contiguous arrays, local-id indexed."""

    __slots__ = (
        "devices",
        "network",
        "proxy_queued",
        "queue_size",
        "prefetch_limit",
        "volume_limit",
        "wake_phase",
        "next_expiry",
        "offline_reads",
        "scalar_only",
    )

    def __init__(self, workload: FleetWorkload, initial_prefetch_limit: int) -> None:
        n = workload.devices
        config = workload.config
        self.devices = n
        #: 1 while the binding's last-hop link is UP.
        self.network = np.ones(n, dtype=np.uint8)
        #: Events waiting in the binding's three proxy queues.
        self.proxy_queued = np.zeros(n, dtype=np.int32)
        #: The proxy's estimate of the client queue occupancy.
        self.queue_size = np.zeros(n, dtype=np.int32)
        #: The binding's current prefetch budget (policy-effective).
        self.prefetch_limit = np.full(n, initial_prefetch_limit, dtype=np.int32)
        #: The subscription's Max — notifications per read (static).
        self.volume_limit = np.asarray(workload.limits, dtype=np.int32)
        #: Per-device wake-window offset in hours (static); re-drawn
        #: from the builder's named substream, sliced to this shard.
        self.wake_phase = (
            RandomSource(config.seed)
            .spawn_numpy("fleet:wake-offsets")
            .uniform(
                -config.wake_hour_spread, config.wake_hour_spread,
                size=config.devices,
            )[workload.lo : workload.lo + n]
        )
        #: Earliest ``expires_at`` queued at the proxy (inf = none).
        self.next_expiry = np.full(n, math.inf)
        #: Offline read-log entries buffered on the device.
        self.offline_reads = np.zeros(n, dtype=np.int32)
        #: Sticky dispatch gate: 1 = route this binding's events through
        #: the scalar oracle path.
        self.scalar_only = np.zeros(n, dtype=np.uint8)

    # ------------------------------------------------------------------
    # Write-through setters (narrow, one field each). The batch pumps
    # write the arrays directly on their hottest paths — same stores,
    # no call overhead — but every non-pump writer goes through these.
    # ------------------------------------------------------------------
    def set_network(self, device: int, up: bool) -> None:
        self.network[device] = 1 if up else 0

    def set_queue_size(self, device: int, size: int) -> None:
        self.queue_size[device] = size

    def set_prefetch_limit(self, device: int, limit: int) -> None:
        self.prefetch_limit[device] = limit

    def set_proxy_queued(self, device: int, count: int) -> None:
        self.proxy_queued[device] = count

    def mark_scalar_only(self, device: int) -> None:
        self.scalar_only[device] = 1

    # ------------------------------------------------------------------
    # Masks (vectorized views over the whole shard)
    # ------------------------------------------------------------------
    def online_mask(self) -> np.ndarray:
        """Devices whose last hop is currently UP."""
        return self.network != 0

    def budget_mask(self) -> np.ndarray:
        """Devices with spare prefetch room on the client."""
        return self.queue_size < self.prefetch_limit

    def fast_mask(self) -> np.ndarray:
        """Devices eligible for fused dispatch right now."""
        return self.scalar_only == 0

    # ------------------------------------------------------------------
    # Invariant audit (test / --audit surface)
    # ------------------------------------------------------------------
    def verify_sync(self, states, devices, topics) -> List[str]:
        """Check the write-through invariants against the authoritative
        objects; returns human-readable violations (empty = in sync)."""
        violations: List[str] = []
        for d, state in enumerate(states):
            up = state.network is NetworkStatus.UP
            if bool(self.network[d]) != up:
                violations.append(
                    f"device {d}: network column {self.network[d]} vs "
                    f"authoritative {state.network}"
                )
            queued = state.queued_event_count()
            if int(self.proxy_queued[d]) < queued:
                violations.append(
                    f"device {d}: proxy_queued column {self.proxy_queued[d]} "
                    f"below authoritative {queued}"
                )
            if int(self.queue_size[d]) != state.queue_size:
                violations.append(
                    f"device {d}: queue_size column {self.queue_size[d]} vs "
                    f"authoritative {state.queue_size}"
                )
            if int(self.prefetch_limit[d]) != state.prefetch_limit:
                violations.append(
                    f"device {d}: prefetch_limit column "
                    f"{self.prefetch_limit[d]} vs authoritative "
                    f"{state.prefetch_limit}"
                )
            hint = float(self.next_expiry[d])
            for queue in (state.outgoing, state.prefetch, state.holding):
                for item in queue:
                    if item.expires_at is not None and item.expires_at < hint:
                        violations.append(
                            f"device {d}: next_expiry hint {hint:.3f} past "
                            f"queued expiry {item.expires_at:.3f}"
                        )
                        break
        return violations
