"""Fleet scenario configuration.

A :class:`FleetScenarioConfig` describes a whole population of devices
behind one proxy: the baseline workload knobs (the same
arrival/read/outage/rank-change processes as a single-device
:class:`~repro.workload.scenario.ScenarioConfig`) plus the heterogeneity
knobs that make each device an individual — per-device activity-rate
multipliers, a discrete volume-limit (Max) mix, per-device awake-window
offsets, and per-device outage severity.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import ConfigurationError
from repro.units import DAY
from repro.workload.arrivals import ArrivalConfig
from repro.workload.outages import OutageConfig
from repro.workload.ranks import RankChangeConfig
from repro.workload.reads import ReadConfig


@dataclass(frozen=True)
class FleetScenarioConfig:
    """Full description of one fleet campaign.

    The nested workload configs give the *population means*; each device
    draws its own rates around them. ``seed`` drives both the
    fleet-level substreams and the per-device fault seeds
    (``derive_seed(seed, "device-<d>")``), so a campaign is a pure
    function of this config.
    """

    devices: int = 1000
    duration: float = DAY
    seed: int = 0
    arrivals: ArrivalConfig = field(default_factory=ArrivalConfig)
    reads: ReadConfig = field(default_factory=ReadConfig)
    outages: OutageConfig = field(default_factory=OutageConfig)
    rank_changes: RankChangeConfig = field(default_factory=RankChangeConfig)
    #: Subscriber's qualitative limit, applied at every binding.
    threshold: float = 0.0

    # -- heterogeneity ---------------------------------------------------
    #: Lognormal sigma of per-device arrival-rate multipliers (mean 1).
    rate_sigma: float = 0.5
    #: Lognormal sigma of per-device read-rate multipliers (mean 1).
    read_rate_sigma: float = 0.35
    #: Discrete mix of per-device volume limits (the subscription Max);
    #: each device draws one uniformly.
    volume_limits: Tuple[int, ...] = (4, 8, 16)
    #: Lognormal sigma of per-device downtime-fraction multipliers
    #: (mean 1, product clamped to 0.95).
    downtime_sigma: float = 0.75
    #: Uniform half-width (hours) of per-device wake-hour offsets.
    wake_hour_spread: float = 3.0

    def validate(self) -> None:
        if self.devices < 1:
            raise ConfigurationError(
                f"devices must be at least 1, got {self.devices}"
            )
        if self.duration <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {self.duration}"
            )
        self.arrivals.validate()
        self.reads.validate()
        self.outages.validate()
        self.rank_changes.validate()
        if self.threshold < 0:
            raise ConfigurationError(
                f"threshold must be non-negative, got {self.threshold}"
            )
        for name in ("rate_sigma", "read_rate_sigma", "downtime_sigma",
                     "wake_hour_spread"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(
                    f"{name} must be non-negative, got {value}"
                )
        if not self.volume_limits:
            raise ConfigurationError("volume_limits must not be empty")
        for limit in self.volume_limits:
            if limit < 1:
                raise ConfigurationError(
                    f"volume limits must be at least 1, got {limit}"
                )

    def with_changes(self, **changes: object) -> "FleetScenarioConfig":
        """Return a copy with top-level fields replaced (sweep helper)."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]
