"""Fleet-scale simulation: one proxy serving thousands of devices.

The paper sizes its proxy for "notification delivery to mobile users"
at large — the experiments replay one device at a time, but the proxy
of §3 is explicitly shared infrastructure. This package scales the
reproduction to that setting: a single :class:`~repro.proxy.proxy.
LastHopProxy` holds one compact per-binding :class:`~repro.proxy.state.
TopicState` per device, per-device workload heterogeneity is drawn from
columnar substreams in one vectorized pass, and campaigns shard over
devices with O(shards) streaming aggregation
(:mod:`repro.metrics.streaming`).

Entry points:

* :class:`~repro.fleet.config.FleetScenarioConfig` — fleet knobs plus
  per-device heterogeneity (volume limits, awake windows, outage
  profiles).
* :func:`~repro.fleet.workload.build_fleet_workload` — the vectorized
  generator; ``device_trace(i)`` slices out any single device's
  :class:`~repro.sim.trace.Trace`.
* :func:`~repro.fleet.runner.run_fleet` — run the fleet, optionally
  sharded across worker processes; results are invariant to the
  ``(shards, jobs)`` partitioning.
* :class:`~repro.fleet.sweep.FleetSweepConfig` /
  :func:`~repro.fleet.sweep.run_fleet_sweep` — grid scenario knobs ×
  policy variants × seeds into an append-only, resumable results store
  (:class:`~repro.fleet.store.SweepStore`).
* :class:`~repro.fleet.tune.TuneConfig` /
  :func:`~repro.fleet.tune.run_fleet_tune` — adaptive, deterministic
  search over a policy preset's parameter space through the same store,
  with best-known-variant regression tracking.
"""

from repro.fleet.config import FleetScenarioConfig
from repro.fleet.runner import FleetResult, run_fleet
from repro.fleet.store import (
    BestRow,
    SweepRow,
    SweepStore,
    cell_key,
    dump_rows,
)
from repro.fleet.sweep import (
    FleetSweepConfig,
    PolicyVariant,
    SweepOutcome,
    parse_policy_token,
    run_fleet_sweep,
    summarize_pareto,
)
from repro.fleet.tune import (
    TuneConfig,
    TuneObjective,
    TuneOutcome,
    TuneParam,
    run_fleet_tune,
)
from repro.fleet.workload import FleetWorkload, build_fleet_workload

__all__ = [
    "BestRow",
    "FleetScenarioConfig",
    "FleetResult",
    "FleetSweepConfig",
    "FleetWorkload",
    "PolicyVariant",
    "SweepOutcome",
    "SweepRow",
    "SweepStore",
    "TuneConfig",
    "TuneObjective",
    "TuneOutcome",
    "TuneParam",
    "build_fleet_workload",
    "cell_key",
    "dump_rows",
    "parse_policy_token",
    "run_fleet",
    "run_fleet_sweep",
    "run_fleet_tune",
    "summarize_pareto",
]
