"""repro — volume-limiting publish/subscribe with last-hop prefetching.

A production-quality reproduction of Zagorodnov & Johansen, *The Last
Hop of Global Notification Delivery to Mobile Users: Accommodating
Volume Limits and Device Constraints* (ICDCS 2005).

Quickstart::

    from repro import (PolicyConfig, ScenarioConfig, build_trace,
                       run_paired)

    config = ScenarioConfig()                 # paper defaults
    trace = build_trace(config, seed=42)
    result = run_paired(trace, PolicyConfig.unified())
    print(result.metrics.describe())

The layers, bottom-up:

* :mod:`repro.sim` — deterministic discrete-event engine, seeded RNG,
  frozen traces;
* :mod:`repro.workload` — arrival/read/outage/rank-change generators;
* :mod:`repro.broker` — the topic-based routing substrate (publishers,
  subscriptions, broker overlay);
* :mod:`repro.proxy` — the volume-limiting last-hop proxy (the paper's
  Figure 7 algorithm and the forwarding-policy spectrum);
* :mod:`repro.device` — the mobile device, last-hop link, battery and
  storage constraints;
* :mod:`repro.context` — location-parameterized re-subscription;
* :mod:`repro.metrics` — waste/loss accounting;
* :mod:`repro.experiments` — the harness regenerating every figure of
  the paper's evaluation.
"""

from repro.broker.client_api import Publisher, Subscriber
from repro.broker.message import Notification
from repro.broker.overlay import BrokerOverlay
from repro.broker.subscriptions import Subscription
from repro.device.battery import Battery
from repro.device.cooperation import AdHocNetwork, DeviceGroup
from repro.device.device import ClientDevice
from repro.device.link import LastHopLink
from repro.device.storage import StoragePolicy
from repro.errors import ExportError, ReproError
from repro.experiments.runner import (
    PairedResult,
    ReplicationSpec,
    RunResult,
    run_paired,
    run_paired_config,
    run_scenario,
)
from repro.faults import PRESETS as FAULT_PRESETS
from repro.faults import FaultPlan, FaultSpec
from repro.metrics.accounting import RunStats
from repro.metrics.analytic import expected_expiration_waste, expected_overflow_waste
from repro.metrics.cost import TariffModel, price_run
from repro.metrics.waste_loss import PairedMetrics, compute_loss, compute_waste
from repro.proxy.policies import PolicyConfig
from repro.proxy.proxy import LastHopProxy, ProxyConfig
from repro.proxy.replication import ReplicatedProxy
from repro.proxy.schedule import DeliverySchedule, QuietHours
from repro.sim.engine import Simulator
from repro.sim.rng import RandomSource
from repro.sim.trace import Trace
from repro.sim.trace_io import load_trace, save_trace
from repro.types import NetworkStatus, PolicyKind, TopicType
from repro.workload.diurnal import DiurnalProfile
from repro.workload.scenario import ScenarioConfig, build_trace

__version__ = "1.0.0"

__all__ = [
    "AdHocNetwork",
    "Battery",
    "BrokerOverlay",
    "ClientDevice",
    "DeliverySchedule",
    "DeviceGroup",
    "DiurnalProfile",
    "ExportError",
    "FAULT_PRESETS",
    "FaultPlan",
    "FaultSpec",
    "LastHopLink",
    "LastHopProxy",
    "NetworkStatus",
    "Notification",
    "PairedMetrics",
    "PairedResult",
    "PolicyConfig",
    "PolicyKind",
    "ProxyConfig",
    "Publisher",
    "QuietHours",
    "RandomSource",
    "ReplicatedProxy",
    "ReproError",
    "ReplicationSpec",
    "RunResult",
    "RunStats",
    "ScenarioConfig",
    "Simulator",
    "StoragePolicy",
    "Subscriber",
    "Subscription",
    "TariffModel",
    "Trace",
    "TopicType",
    "build_trace",
    "compute_loss",
    "compute_waste",
    "expected_expiration_waste",
    "expected_overflow_waste",
    "load_trace",
    "price_run",
    "run_paired",
    "run_paired_config",
    "run_scenario",
    "save_trace",
    "__version__",
]
