"""Accounting and the paper's inefficiency metrics.

The paper defines two inefficiency metrics on the last hop (§3.1):

* **wasted messages** — "those that were sent to the device, but never
  read by the user";
* **lost messages** — "those that would have been read by the user under
  an on-line forwarding policy (i.e. the best possible service), but
  never reached the user under the policy in effect".

:class:`~repro.metrics.accounting.RunStats` collects raw counters during
a run; :mod:`~repro.metrics.waste_loss` turns paired runs into the
waste/loss percentages plotted in the paper's figures;
:mod:`~repro.metrics.analytic` provides the closed-form overflow-waste
model (``1 − user_frequency·Max/event_frequency``) used for validation.
"""

from repro.metrics.accounting import RunStats
from repro.metrics.analytic import (
    expected_expiration_waste,
    expected_overflow_waste,
    expected_worst_case_waste,
)
from repro.metrics.summary import Summary, summarize
from repro.metrics.waste_loss import PairedMetrics, compute_loss, compute_waste, pair_metrics

__all__ = [
    "PairedMetrics",
    "RunStats",
    "Summary",
    "compute_loss",
    "compute_waste",
    "expected_expiration_waste",
    "expected_overflow_waste",
    "expected_worst_case_waste",
    "pair_metrics",
    "summarize",
]
