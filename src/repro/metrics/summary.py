"""Small statistics helpers for replication sweeps.

Experiments that average waste/loss over multiple seeds use these
instead of pulling in heavier dependencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Summary:
    """Mean, standard deviation, and extrema of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.count == 0:
            return 0.0
        return self.std / math.sqrt(self.count)

    def describe(self, unit: str = "") -> str:
        suffix = f" {unit}" if unit else ""
        return (
            f"{self.mean:.3f} ± {self.std:.3f}{suffix} "
            f"(n={self.count}, range [{self.minimum:.3f}, {self.maximum:.3f}])"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Summarize a non-empty sample (population std)."""
    if not values:
        raise ConfigurationError("cannot summarize an empty sample")
    count = len(values)
    minimum = min(values)
    maximum = max(values)
    # Accumulation rounding can push the mean a last-place unit outside
    # the sample range (e.g. mean([0.2, 0.2, 0.2]) > 0.2); clamp so the
    # minimum <= mean <= maximum invariant always holds.
    mean = min(max(sum(values) / count, minimum), maximum)
    variance = sum((v - mean) ** 2 for v in values) / count
    return Summary(
        count=count,
        mean=mean,
        std=math.sqrt(variance),
        minimum=minimum,
        maximum=maximum,
    )


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sample, q in [0, 1]."""
    if not values:
        raise ConfigurationError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"percentile q must be within [0, 1], got {q}")
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]
