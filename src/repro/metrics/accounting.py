"""Raw per-run counters.

One :class:`RunStats` instance is threaded through the proxy, link, and
device of a scenario run. It records message identities (needed for the
paper's set-comparison loss metric) and volume/energy counters (needed
for the waste metric and the device-constraint accounting of §2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Set

from repro.types import DeliveryMode, EventId, RunOutcome


@dataclass
class RunStats:
    """Counters collected during one scenario run."""

    # Arrival-side --------------------------------------------------------
    #: Notifications that arrived at the proxy from the wired network.
    arrivals: int = 0
    #: Arrivals accepted (rank at or above the subscription threshold).
    accepted: int = 0
    #: Arrivals filtered out at the proxy by the rank threshold.
    filtered: int = 0
    #: Rank-change announcements processed.
    rank_changes: int = 0

    # Last-hop traffic -----------------------------------------------------
    #: Identities of every notification forwarded proxy -> device.
    forwarded_ids: Set[EventId] = field(default_factory=set)
    #: Forwards initiated proactively (on-line forwarding or prefetch).
    pushed: int = 0
    #: Forwards shipped in response to a READ exchange.
    pulled: int = 0
    #: Rank-drop retraction control messages sent to the device.
    retractions_sent: int = 0
    #: Total last-hop payload bytes, device-bound.
    bytes_sent: int = 0
    #: READ request messages that reached the proxy.
    read_requests: int = 0

    # User-side ------------------------------------------------------------
    #: Identities of every notification the user actually read.
    read_ids: Set[EventId] = field(default_factory=set)
    #: User read attempts (including ones that found nothing).
    reads: int = 0
    #: Reads that found no acceptable message on the device.
    empty_reads: int = 0
    #: Reads attempted while the last-hop link was down.
    reads_during_outage: int = 0
    #: Sum over read messages of (read time - publication time); divide
    #: by len(read_ids) for the mean notification age at reading.
    read_delay_sum: float = 0.0

    # Inefficiency sources ---------------------------------------------------
    #: Forwarded notifications that expired on the device before reading.
    expired_on_device: int = 0
    #: Notifications that expired while still queued at the proxy.
    expired_at_proxy: int = 0
    #: Notifications evicted from the device by the storage cap.
    displaced: int = 0
    #: Forwarded notifications removed from the device by a retraction.
    retracted_on_device: int = 0
    #: Notifications discarded at the proxy by rank drops before forwarding.
    dropped_before_forward: int = 0

    # Device constraints -------------------------------------------------
    #: Battery units drained (0 when no battery model is attached).
    battery_spent: float = 0.0
    outcome: RunOutcome = RunOutcome.COMPLETED

    # Fault injection (all zero unless a FaultPlan is active) -------------
    #: Last-hop delivery attempts lost by the fault plan.
    delivery_drops: int = 0
    #: Retry attempts scheduled by the ack–retry protocol.
    delivery_retries: int = 0
    #: Transfers abandoned after the retry budget was exhausted.
    delivery_failures: int = 0
    #: Extra copies the fault plan delivered to the device.
    duplicates_delivered: int = 0
    #: Duplicate copies the device recognized and discarded.
    duplicates_deduped: int = 0
    #: Proxy crash events injected.
    proxy_crashes: int = 0
    #: Total seconds the proxy spent down across all crashes.
    crash_downtime: float = 0.0
    #: Notifications that arrived while the proxy was down (lost).
    lost_in_crash: int = 0
    #: Offline-read log entries duplicated by the fault plan.
    report_entries_corrupted: int = 0

    # ------------------------------------------------------------------
    # Recording helpers (called by proxy / link / device)
    # ------------------------------------------------------------------
    def record_forward(self, event_id: EventId, size_bytes: int, mode: DeliveryMode) -> None:
        self.forwarded_ids.add(event_id)
        self.bytes_sent += size_bytes
        if mode is DeliveryMode.PUSHED:
            self.pushed += 1
        else:
            self.pulled += 1

    def record_read(self, event_id: EventId, age: float) -> None:
        self.read_ids.add(event_id)
        self.read_delay_sum += age

    # ------------------------------------------------------------------
    # Derived values
    # ------------------------------------------------------------------
    @property
    def forwarded(self) -> int:
        """Distinct notifications forwarded over the last hop."""
        return len(self.forwarded_ids)

    @property
    def messages_read(self) -> int:
        """Distinct notifications read by the user."""
        return len(self.read_ids)

    @property
    def wasted(self) -> int:
        """Forwarded notifications the user never read."""
        return len(self.forwarded_ids - self.read_ids)

    @property
    def mean_read_age(self) -> float:
        """Mean age (seconds since publication) of read notifications."""
        if not self.read_ids:
            return 0.0
        return self.read_delay_sum / len(self.read_ids)

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"arrivals            {self.arrivals}",
            f"accepted            {self.accepted}",
            f"forwarded           {self.forwarded} "
            f"(pushed {self.pushed}, pulled {self.pulled})",
            f"read                {self.messages_read} over {self.reads} reads "
            f"({self.empty_reads} empty, {self.reads_during_outage} during outage)",
            f"wasted              {self.wasted}",
            f"expired on device   {self.expired_on_device}",
            f"expired at proxy    {self.expired_at_proxy}",
            f"retractions sent    {self.retractions_sent}",
            f"bytes sent          {self.bytes_sent}",
        ]
        # Fault lines appear only when faults were injected, so the
        # fault-free summary stays byte-identical to the pre-fault one.
        if (
            self.delivery_drops
            or self.delivery_retries
            or self.delivery_failures
            or self.duplicates_delivered
            or self.proxy_crashes
            or self.lost_in_crash
            or self.report_entries_corrupted
        ):
            lines += [
                f"delivery drops      {self.delivery_drops} "
                f"({self.delivery_retries} retries, "
                f"{self.delivery_failures} abandoned)",
                f"duplicates          {self.duplicates_delivered} delivered, "
                f"{self.duplicates_deduped} deduplicated",
                f"proxy crashes       {self.proxy_crashes} "
                f"({self.crash_downtime:.0f} s down, "
                f"{self.lost_in_crash} arrivals lost)",
            ]
        return "\n".join(lines)
