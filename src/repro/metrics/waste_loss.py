"""Waste and loss computation over paired runs.

Waste is intrinsic to one run: the fraction of forwarded messages never
read. Loss needs the paired on-line baseline executed on the identical
trace: "upon the completion of a run, the set of messages read under a
prefetching scenario was compared to the set of messages read under the
on-line scenario" (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.accounting import RunStats


def compute_waste(stats: RunStats) -> float:
    """Fraction of forwarded messages the user never read, in [0, 1].

    A run that forwarded nothing has zero waste (the pure on-demand
    guarantee).
    """
    forwarded = stats.forwarded
    if forwarded == 0:
        return 0.0
    return stats.wasted / forwarded


def compute_loss(baseline: RunStats, policy: RunStats) -> float:
    """Fraction of baseline-read messages the policy failed to deliver.

    ``baseline`` must be the on-line run over the same trace. A baseline
    that read nothing yields zero loss (both policies are "equally
    powerless", as at 100 % outage).
    """
    baseline_read = baseline.read_ids
    if not baseline_read:
        return 0.0
    missed = baseline_read - policy.read_ids
    return len(missed) / len(baseline_read)


@dataclass(frozen=True)
class PairedMetrics:
    """The waste/loss outcome of one paired (baseline, policy) run."""

    waste: float
    loss: float
    #: Waste of the on-line baseline itself — the paper's "cap for the
    #: maximum level of waste".
    baseline_waste: float
    forwarded: int
    messages_read: int
    baseline_read: int

    @property
    def waste_percent(self) -> float:
        return 100.0 * self.waste

    @property
    def loss_percent(self) -> float:
        return 100.0 * self.loss

    def describe(self) -> str:
        return (
            f"waste {self.waste_percent:5.1f} %  loss {self.loss_percent:5.1f} %  "
            f"(forwarded {self.forwarded}, read {self.messages_read}, "
            f"baseline read {self.baseline_read}, "
            f"baseline waste {100 * self.baseline_waste:.1f} %)"
        )


def pair_metrics(baseline: RunStats, policy: RunStats) -> PairedMetrics:
    """Compute the full paired waste/loss record for two runs."""
    return PairedMetrics(
        waste=compute_waste(policy),
        loss=compute_loss(baseline, policy),
        baseline_waste=compute_waste(baseline),
        forwarded=policy.forwarded,
        messages_read=policy.messages_read,
        baseline_read=baseline.messages_read,
    )
