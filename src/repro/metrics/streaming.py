"""Mergeable streaming accumulators for fleet-scale aggregation.

A fleet campaign runs millions of devices across shards; collecting one
:class:`~repro.metrics.accounting.RunStats` per device in the parent
would make aggregation memory O(devices). The accumulators here are the
alternative: each shard folds its devices into O(1) state, shards merge
pairwise, and the merged result is independent of how devices were
partitioned.

Three pieces:

* :class:`StreamingMoments` — count/sum/min/max/M2 (Welford), merged
  with Chan et al.'s parallel update. Counts and extrema merge exactly;
  the float sum and M2 merge up to reassociation (~1e-9 relative).
* :class:`QuantileSketch` — fixed-bin histogram with integer counts.
  Merging two sketches with identical bins is **exact**: integer bin
  counts add, so the merged sketch equals the sketch of the
  concatenated data regardless of shard count or order. The only
  approximation is the binning itself: nearest-rank percentiles are
  reported as bin midpoints, so the absolute error is at most half the
  bin width for values below ``upper`` (values at or above ``upper``
  clamp to the overflow bin, reported as ``upper``).
* :class:`FleetAccumulator` — folds per-device ``RunStats`` into summed
  counters plus the two sketch types above. Integer counters are
  bit-identical across any sharding; float sums carry the documented
  reassociation tolerance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from operator import itemgetter
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.metrics.accounting import RunStats
from repro.units import DAY

#: RunStats fields folded by summation (everything scalar; the identity
#: sets are reduced to their sizes via ``forwarded``/``messages_read``).
_SUMMED_FIELDS = tuple(
    f.name
    for f in fields(RunStats)
    if f.name not in ("forwarded_ids", "read_ids", "outcome")
)


class StreamingMoments:
    """Streaming count/sum/min/max/variance (Welford's algorithm)."""

    __slots__ = ("count", "sum", "minimum", "maximum", "_mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._mean = 0.0
        self._m2 = 0.0

    def push(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    def merge(self, other: "StreamingMoments") -> None:
        """Chan's parallel moments update; exact for count/min/max."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.sum = other.sum
            self.minimum = other.minimum
            self.maximum = other.maximum
            self._mean = other._mean
            self._m2 = other._m2
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._mean += delta * other.count / total
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.count = total
        self.sum += other.sum
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance (0 with fewer than two observations)."""
        return self._m2 / self.count if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(max(0.0, self.variance))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StreamingMoments(n={self.count}, mean={self.mean:.3g})"


class QuantileSketch:
    """Fixed-bin quantile sketch with exact merging.

    ``bins`` equal-width bins cover ``[0, upper)``; one overflow bin
    catches everything at or above ``upper`` (and reports as ``upper``).
    Bin counts are integers, so merging sketches built over the same
    ``(upper, bins)`` grid is exact — the merged sketch is
    indistinguishable from one fed the concatenated observations, in
    any order. The discretization error of :meth:`percentile` is
    therefore fixed at sketch construction: at most half the bin width
    (``upper / bins / 2``) for in-range values, independent of how many
    sketches were merged. Merging sketches with different grids is
    refused rather than approximated.
    """

    __slots__ = ("upper", "bins", "count", "_counts", "_width")

    def __init__(self, upper: float = DAY, bins: int = 1024) -> None:
        if not (upper > 0 and math.isfinite(upper)):
            raise ConfigurationError(f"upper must be finite and positive, got {upper}")
        if bins < 1:
            raise ConfigurationError(f"bins must be at least 1, got {bins}")
        self.upper = float(upper)
        self.bins = int(bins)
        self.count = 0
        self._counts = [0] * (self.bins + 1)
        self._width = self.upper / self.bins

    @property
    def bin_width(self) -> float:
        """Worst-case percentile error is half this value."""
        return self._width

    def push(self, value: float) -> None:
        index = int(value / self._width) if value < self.upper else self.bins
        if index < 0:
            index = 0
        self._counts[index] += 1
        self.count += 1

    def merge(self, other: "QuantileSketch") -> None:
        if (self.upper, self.bins) != (other.upper, other.bins):
            raise ConfigurationError(
                f"cannot merge sketches with different grids: "
                f"({self.upper}, {self.bins}) vs ({other.upper}, {other.bins})"
            )
        counts = self._counts
        for index, n in enumerate(other._counts):
            counts[index] += n
        self.count += other.count

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, reported as the bin midpoint.

        0.0 with no observations. Error bound: ``bin_width / 2`` for
        values below ``upper``; values beyond clamp to ``upper``.
        """
        if not 0.0 < p <= 1.0:
            raise ConfigurationError(f"percentile must be in (0, 1], got {p}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(p * self.count))
        seen = 0
        for index, n in enumerate(self._counts):
            seen += n
            if seen >= rank:
                if index == self.bins:
                    return self.upper
                return (index + 0.5) * self._width
        return self.upper  # pragma: no cover - unreachable (counts sum)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QuantileSketch(n={self.count}, upper={self.upper}, bins={self.bins})"


class SketchedStats(RunStats):
    """A device's :class:`RunStats` that also feeds shared fleet sketches.

    The fleet runner hands every device in a shard the same
    :class:`QuantileSketch`/:class:`StreamingMoments` pair; read ages
    stream into them as they happen, so per-read detail never has to be
    retained per device.
    """

    def __init__(
        self,
        delay_sketch: Optional[QuantileSketch] = None,
        delay_moments: Optional[StreamingMoments] = None,
    ) -> None:
        super().__init__()
        self.delay_sketch = delay_sketch
        self.delay_moments = delay_moments

    def record_read(self, event_id, age: float) -> None:  # type: ignore[override]
        super().record_read(event_id, age)
        if self.delay_sketch is not None:
            self.delay_sketch.push(age)
        if self.delay_moments is not None:
            self.delay_moments.push(age)


@dataclass
class FleetAccumulator:
    """O(1)-memory fold of per-device run results.

    ``add_device`` consumes one device's :class:`RunStats`; ``merge``
    folds another accumulator (one shard's worth) in. All integer
    counters and sketch bins are exact under any partitioning; float
    sums (``read_delay_sum``, ``bytes``, battery) merge up to
    reassociation (~1e-9 relative), which the shard-invariance tests
    pin. Merge shards in a fixed order for bit-level determinism.
    """

    devices: int = 0
    #: Simulator events fired across all shards.
    events_processed: int = 0
    #: Distinct notifications forwarded (summed ``len(forwarded_ids)``).
    forwarded: int = 0
    #: Distinct notifications read (summed ``len(read_ids)``).
    messages_read: int = 0
    #: Forwarded-but-never-read, summed per device.
    wasted: int = 0
    #: Notifications still queued proxy-side / device-side at the end.
    final_proxy_queued: int = 0
    final_device_queued: int = 0
    #: Every scalar RunStats counter, summed across devices.
    counters: Dict[str, float] = field(
        default_factory=lambda: {name: 0 for name in _SUMMED_FIELDS}
    )
    #: Read-age distribution (merged exactly; see QuantileSketch).
    read_delay_sketch: QuantileSketch = field(default_factory=QuantileSketch)
    #: Read-age moments across every read in the fleet.
    read_delay_moments: StreamingMoments = field(default_factory=StreamingMoments)
    #: Per-device distribution of messages read (one push per device).
    device_reads: StreamingMoments = field(default_factory=StreamingMoments)
    #: Per-device distribution of wasted messages.
    device_waste: StreamingMoments = field(default_factory=StreamingMoments)

    def add_device(
        self,
        stats: RunStats,
        final_proxy_queued: int = 0,
        final_device_queued: int = 0,
    ) -> None:
        self.devices += 1
        self.forwarded += stats.forwarded
        self.messages_read += stats.messages_read
        self.wasted += stats.wasted
        self.final_proxy_queued += final_proxy_queued
        self.final_device_queued += final_device_queued
        counters = self.counters
        # RunStats is a plain (non-slotted) dataclass, so every summed
        # field lives in the instance dict; one dict lookup per field
        # beats getattr's descriptor protocol on the fleet fold path,
        # which runs once per device.
        values = stats.__dict__
        for name in _SUMMED_FIELDS:
            counters[name] += values[name]
        self.device_reads.push(float(stats.messages_read))
        self.device_waste.push(float(stats.wasted))

    def add_shard(
        self,
        stats_list: List[RunStats],
        final_proxy_queued: List[int],
        final_device_queued: List[int],
    ) -> None:
        """Fold a whole shard of devices in one column-at-a-time pass.

        Bit-identical to calling :meth:`add_device` once per device in
        list order: the integer columns are order-free sums, and the
        float columns (``read_delay_sum``, battery, crash downtime)
        associate left-to-right inside ``sum`` exactly as the
        sequential fold does. The per-device moment pushes stay
        sequential — Welford's update is order-sensitive, and both
        fleet dispatch modes must describe() identically.
        """
        self.devices += len(stats_list)
        self.final_proxy_queued += sum(final_proxy_queued)
        self.final_device_queued += sum(final_device_queued)
        counters = self.counters
        # Column-at-a-time: itemgetter over the instance dicts keeps
        # the whole per-field reduction in C (RunStats is a plain
        # dataclass, so every summed field lives in __dict__).
        dicts = [stats.__dict__ for stats in stats_list]
        for name in _SUMMED_FIELDS:
            counters[name] += sum(map(itemgetter(name), dicts))
        forwarded = 0
        messages_read = 0
        wasted = 0
        push_reads = self.device_reads.push
        push_waste = self.device_waste.push
        for stats in stats_list:
            forwarded_ids = stats.forwarded_ids
            read_ids = stats.read_ids
            n_read = len(read_ids)
            n_wasted = len(forwarded_ids - read_ids)
            forwarded += len(forwarded_ids)
            messages_read += n_read
            wasted += n_wasted
            push_reads(float(n_read))
            push_waste(float(n_wasted))
        self.forwarded += forwarded
        self.messages_read += messages_read
        self.wasted += wasted

    def merge(self, other: "FleetAccumulator") -> None:
        self.devices += other.devices
        self.events_processed += other.events_processed
        self.forwarded += other.forwarded
        self.messages_read += other.messages_read
        self.wasted += other.wasted
        self.final_proxy_queued += other.final_proxy_queued
        self.final_device_queued += other.final_device_queued
        counters = self.counters
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        self.read_delay_sketch.merge(other.read_delay_sketch)
        self.read_delay_moments.merge(other.read_delay_moments)
        self.device_reads.merge(other.device_reads)
        self.device_waste.merge(other.device_waste)

    # ------------------------------------------------------------------
    # Derived fleet-level metrics
    # ------------------------------------------------------------------
    @property
    def waste(self) -> float:
        """Fraction of forwarded notifications never read (paper §3.1)."""
        return self.wasted / self.forwarded if self.forwarded else 0.0

    @property
    def mean_read_age(self) -> float:
        if not self.messages_read:
            return 0.0
        return self.counters["read_delay_sum"] / self.messages_read

    def describe(self) -> str:
        """Multi-line human-readable fleet summary."""
        c = self.counters
        lines = [
            f"devices             {self.devices}",
            f"events processed    {self.events_processed}",
            f"arrivals            {int(c['arrivals'])}",
            f"accepted            {int(c['accepted'])}",
            f"forwarded           {self.forwarded} "
            f"(pushed {int(c['pushed'])}, pulled {int(c['pulled'])})",
            f"read                {self.messages_read} over {int(c['reads'])} reads "
            f"({int(c['empty_reads'])} empty, "
            f"{int(c['reads_during_outage'])} during outage)",
            f"wasted              {self.wasted} (waste {self.waste:.3f})",
            f"expired on device   {int(c['expired_on_device'])}",
            f"expired at proxy    {int(c['expired_at_proxy'])}",
            f"bytes sent          {int(c['bytes_sent'])}",
            f"mean read age       {self.mean_read_age:.0f} s "
            f"(p50 {self.read_delay_sketch.percentile(0.5):.0f} s, "
            f"p95 {self.read_delay_sketch.percentile(0.95):.0f} s, "
            f"p99 {self.read_delay_sketch.percentile(0.99):.0f} s)",
            f"reads per device    mean {self.device_reads.mean:.2f} "
            f"± {self.device_reads.std:.2f}",
        ]
        if (
            c["delivery_drops"]
            or c["delivery_retries"]
            or c["delivery_failures"]
            or c["duplicates_delivered"]
            or c["proxy_crashes"]
            or c["lost_in_crash"]
            or c["report_entries_corrupted"]
        ):
            lines += [
                f"delivery drops      {int(c['delivery_drops'])} "
                f"({int(c['delivery_retries'])} retries, "
                f"{int(c['delivery_failures'])} abandoned)",
                f"duplicates          {int(c['duplicates_delivered'])} delivered, "
                f"{int(c['duplicates_deduped'])} deduplicated",
                f"crashed bindings    {int(c['proxy_crashes'])} "
                f"({c['crash_downtime']:.0f} s down, "
                f"{int(c['lost_in_crash'])} arrivals lost)",
                # report_entries_corrupted gates this block, so it must
                # also be printed: a corruption-only faulty run would
                # otherwise emit an all-zero fault block with the actual
                # signal missing.
                f"corrupted reports   {int(c['report_entries_corrupted'])}",
            ]
        return "\n".join(lines)

    def signature(self) -> Dict[str, object]:
        """Deterministic summary used by the shard-invariance tests.

        Integer entries must be bit-identical across any ``(shards,
        jobs)``; the single float entry (``read_delay_sum``) carries the
        documented reassociation tolerance.
        """
        sketch_counts: List[int] = list(self.read_delay_sketch._counts)
        return {
            "devices": self.devices,
            "events_processed": self.events_processed,
            "forwarded": self.forwarded,
            "messages_read": self.messages_read,
            "wasted": self.wasted,
            "final_proxy_queued": self.final_proxy_queued,
            "final_device_queued": self.final_device_queued,
            "int_counters": {
                name: int(self.counters[name])
                for name in _SUMMED_FIELDS
                if name
                not in ("read_delay_sum", "battery_spent", "crash_downtime")
            },
            "read_delay_sum": self.counters["read_delay_sum"],
            "sketch_counts": sketch_counts,
        }

    def metrics_row(self) -> Dict[str, object]:
        """:meth:`signature` plus the derived fleet-level metrics.

        This is the payload the sweep results store persists per cell
        (:mod:`repro.fleet.store`): every integer entry is bit-identical
        across any ``(shards, jobs)`` partitioning, and the float
        entries (``read_delay_sum`` plus everything derived from it and
        the sketch) carry only the documented reassociation tolerance —
        so re-running a cell reproduces its stored row.
        """
        row = self.signature()
        sketch = self.read_delay_sketch
        row["waste"] = self.waste
        row["mean_read_age"] = self.mean_read_age
        row["read_age_p50"] = sketch.percentile(0.5)
        row["read_age_p95"] = sketch.percentile(0.95)
        row["read_age_p99"] = sketch.percentile(0.99)
        return row
