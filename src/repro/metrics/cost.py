"""Monetary and energy cost of last-hop traffic.

The paper motivates volume limiting with "rated network access" and
battery drain (§1, §2.3). A :class:`TariffModel` prices a run's last-hop
traffic so experiments can report the *cost of waste* directly — the
money and energy spent on messages the user never read.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.metrics.accounting import RunStats


@dataclass(frozen=True)
class TariffModel:
    """A simple rated-access tariff.

    Defaults approximate a 2005-era GPRS data plan: a per-message
    overhead (signalling) plus a per-kilobyte rate.
    """

    per_message: float = 0.002
    per_kilobyte: float = 0.01
    currency: str = "EUR"

    def validate(self) -> None:
        if self.per_message < 0 or self.per_kilobyte < 0:
            raise ConfigurationError("tariff rates must be non-negative")

    def price(self, messages: int, bytes_carried: int) -> float:
        """Price a traffic volume under this tariff."""
        return self.per_message * messages + self.per_kilobyte * bytes_carried / 1024.0


@dataclass(frozen=True)
class CostBreakdown:
    """Priced outcome of one run."""

    total: float
    wasted: float
    currency: str

    @property
    def useful(self) -> float:
        return self.total - self.wasted

    @property
    def wasted_fraction(self) -> float:
        if self.total == 0:
            return 0.0
        return self.wasted / self.total

    def describe(self) -> str:
        return (
            f"{self.total:.2f} {self.currency} total, "
            f"{self.wasted:.2f} {self.currency} "
            f"({100 * self.wasted_fraction:.0f} %) spent on unread messages"
        )


def price_run(stats: RunStats, tariff: TariffModel = TariffModel()) -> CostBreakdown:
    """Price one run's last-hop traffic.

    The wasted share is attributed by message count: unread forwarded
    messages carry the average per-message cost. Retractions count as
    useful traffic (they save the user from junk).
    """
    tariff.validate()
    transfers = stats.pushed + stats.pulled
    total = tariff.price(transfers + stats.retractions_sent, stats.bytes_sent)
    if stats.forwarded == 0:
        wasted = 0.0
    else:
        data_cost = tariff.price(transfers, stats.bytes_sent)
        wasted = data_cost * (stats.wasted / stats.forwarded)
    return CostBreakdown(total=total, wasted=wasted, currency=tariff.currency)
