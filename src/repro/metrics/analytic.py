"""Closed-form models used to validate the simulator.

Section 3.2 gives the overflow formula explicitly: "The shapes of these
curves can be approximated very well by a simple formula:
Waste % = 1 − user_frequency · Max / event_frequency". The expiration
model below is ours, derived for the Figure 4 setting; the test suite
checks the simulator against both.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.units import DAY


def expected_overflow_waste(
    user_frequency: float, max_per_read: int, event_frequency: float
) -> float:
    """The paper's overflow-waste formula, clamped to [0, 1].

    Valid for an on-line forwarding policy with no expirations and a
    fully available network: the user consumes at most
    ``user_frequency * max_per_read`` messages per day out of
    ``event_frequency`` forwarded, and the remainder is waste.
    """
    if event_frequency <= 0:
        raise ConfigurationError(
            f"event_frequency must be positive, got {event_frequency}"
        )
    if user_frequency < 0 or max_per_read < 0:
        raise ConfigurationError("user_frequency and max_per_read must be non-negative")
    waste = 1.0 - (user_frequency * max_per_read) / event_frequency
    return min(1.0, max(0.0, waste))


def expected_expiration_waste(user_frequency: float, expiration_mean: float) -> float:
    """Approximate waste under on-line forwarding with Max = ∞ (Figure 4).

    Model: reads form a Poisson process with rate λ = user_frequency/day,
    so the wait from a notification's arrival to the next read is
    exponential with rate λ; lifetimes are exponential with rate 1/T.
    The notification is wasted iff it expires first::

        P(waste) = (1/T) / (1/T + λ) = 1 / (1 + λ·T)

    The model ignores the 16–17 h awake window, so it undershoots when
    the expiration time is short enough for overnight gaps to matter;
    the simulator and the formula agree within a few points across the
    mid-range of Figure 4.
    """
    if user_frequency < 0:
        raise ConfigurationError(
            f"user_frequency must be non-negative, got {user_frequency}"
        )
    if expiration_mean <= 0:
        raise ConfigurationError(
            f"expiration_mean must be positive, got {expiration_mean}"
        )
    read_rate = user_frequency / DAY
    return 1.0 / (1.0 + read_rate * expiration_mean)


def expected_worst_case_waste(
    user_frequency: float, max_per_read: int, event_frequency: float
) -> float:
    """Waste plateau of buffer prefetching with a huge limit (§3.2).

    "With event frequency = 32, Max = 8, and user frequency = 2 we
    expect half of all messages to be wasted in the worst case" — a
    prefetch limit large enough to forward everything degenerates to the
    on-line policy, so the plateau equals the overflow-waste formula.
    """
    return expected_overflow_waste(user_frequency, max_per_read, event_frequency)
