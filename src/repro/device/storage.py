"""Device storage cap with low-rank eviction.

"When storage capacity becomes scarce, the device may need to delete
low-ranked unread messages to make room for new ones. This deletion
means that the messages were forwarded needlessly, thus contributing to
battery drain" (paper §2.3). Evicted messages therefore count as waste.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import List

from repro.broker.message import Notification
from repro.errors import ConfigurationError
from repro.proxy.queues import RankedQueue


@dataclass(frozen=True)
class StoragePolicy:
    """Maximum unread notifications the device retains per topic.

    ``max_messages`` of 0 or less means unlimited.
    """

    max_messages: int = 0

    def validate(self) -> None:
        # Any integer is allowed; non-positive disables the cap.
        if not isinstance(self.max_messages, int):
            raise ConfigurationError("max_messages must be an integer")

    @property
    def limited(self) -> bool:
        return self.max_messages > 0

    def evict_for(self, queue: RankedQueue, incoming: Notification) -> List[Notification]:
        """Return the evictions needed to fit ``incoming`` into ``queue``.

        The lowest-ranked residents go first; if the incoming message
        itself is the lowest-ranked, *it* is the eviction (the device
        should not displace better messages for it). The returned list
        may therefore contain ``incoming``.
        """
        if not self.limited:
            return []
        overflow = (len(queue) + 1) - self.max_messages
        if overflow <= 0:
            return []
        # ``nsmallest`` is stable (equivalent to ``sorted(...)[:n]``),
        # so among equal ranks the queue's rank-ordered iteration
        # (oldest first) decides and the incoming message goes last —
        # the same victims the previous full double-sort produced, in
        # O(M log overflow) instead of O(M log M).
        return heapq.nsmallest(
            overflow,
            itertools.chain(queue, (incoming,)),
            key=lambda m: m.rank,
        )
