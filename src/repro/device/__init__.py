"""The mobile device side of the last hop.

Models the paper's §2.3 device constraints:

* :mod:`~repro.device.device` — the client device with its notification
  queue and per-topic read behaviour (Max / Threshold ranked reads);
* :mod:`~repro.device.link` — the last-hop link whose availability is
  driven by the outage schedule and which meters every transfer;
* :mod:`~repro.device.battery` — a battery budget debited per message,
  beyond which "the device is inoperable";
* :mod:`~repro.device.storage` — a storage cap under which "the device
  may need to delete low-ranked unread messages to make room for new
  ones";
* :mod:`~repro.device.cooperation` — multi-device cache sharing (the
  paper's §4 future work).
"""

from repro.device.battery import Battery
from repro.device.device import ClientDevice, ReadOutcome
from repro.device.link import LastHopLink
from repro.device.storage import StoragePolicy

__all__ = [
    "Battery",
    "ClientDevice",
    "LastHopLink",
    "ReadOutcome",
    "StoragePolicy",
]
