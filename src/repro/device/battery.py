"""Battery budget model.

"Even when network access is free or unrated, limited battery power adds
a cost to every network transfer and every computation on the mobile
device by effectuating a limit on network messages beyond which the
device is inoperable" (paper §2.3).

The model is deliberately coarse: an abstract energy budget debited per
message received, per byte transferred, and per message processed at
read time. What matters for the evaluation is the *limit on network
messages* it effectuates, not joule-accurate numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BatteryExhaustedError, ConfigurationError


@dataclass
class Battery:
    """An abstract energy budget.

    ``capacity`` of 0 or less means unlimited (the default model used by
    the paper's simulations, which track waste rather than energy).
    """

    capacity: float = 0.0
    receive_cost: float = 1.0
    per_byte_cost: float = 0.0
    read_cost: float = 0.1
    spent: float = 0.0

    def __post_init__(self) -> None:
        for name in ("receive_cost", "per_byte_cost", "read_cost"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    @property
    def limited(self) -> bool:
        return self.capacity > 0

    @property
    def remaining(self) -> float:
        if not self.limited:
            return float("inf")
        return max(0.0, self.capacity - self.spent)

    @property
    def exhausted(self) -> bool:
        return self.limited and self.spent >= self.capacity

    def _drain(self, amount: float) -> None:
        if self.exhausted:
            raise BatteryExhaustedError(
                f"battery exhausted after {self.spent:.1f}/{self.capacity:.1f} units"
            )
        self.spent += amount

    def drain_receive(self, size_bytes: int) -> None:
        """Debit the cost of receiving one message over the last hop."""
        self._drain(self.receive_cost + self.per_byte_cost * size_bytes)

    def drain_read(self, message_count: int) -> None:
        """Debit the cost of displaying/processing read messages."""
        self._drain(self.read_cost * message_count)
