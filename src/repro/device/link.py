"""The last-hop link between the proxy and the mobile device.

The link is the scarce resource the whole paper is about: it goes up and
down according to the outage schedule, carries proxy-to-device
deliveries and retractions, and meters every transfer. "We view periods
of unacceptably slow network performance as outages" — so the model has
only two states, UP and DOWN.

With a :class:`~repro.faults.FaultPlan` attached the link additionally
models a *lossy* last hop behind a reliable-delivery protocol: each
delivery is an acknowledged transfer attempt that the plan may drop,
duplicate, or jitter; lost attempts are retried with capped exponential
backoff, retries that fire during an outage are parked until the link
returns, and transfers that exhaust the retry budget are abandoned.
Without a plan (the default) every fault-aware path reduces to the
exact single-attempt behaviour — byte-identical runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.broker.message import Notification
from repro.errors import ConfigurationError, ProxyError
from repro.faults import FaultPlan
from repro.metrics.accounting import RunStats
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - annotation-only (avoids an
    # import cycle: obs.__init__ -> obs.audit -> proxy -> ... -> link)
    from repro.obs.recorder import TraceRecorder
from repro.types import DeliveryMode, EventId, NetworkStatus

#: Size of a rank-drop retraction control message (an id plus headers).
RETRACTION_SIZE_BYTES: int = 32

StatusListener = Callable[[NetworkStatus], None]


class LastHopLink:
    """A metered, outage-prone downlink implementing the proxy's
    :class:`~repro.proxy.proxy.Transport` protocol."""

    def __init__(
        self,
        sim: Simulator,
        stats: Optional[RunStats] = None,
        latency: float = 0.0,
        faults: Optional[FaultPlan] = None,
        recorder: Optional["TraceRecorder"] = None,
    ) -> None:
        if latency < 0:
            raise ConfigurationError(f"latency must be non-negative, got {latency}")
        self._sim = sim
        self._stats = stats if stats is not None else RunStats()
        self._latency = latency
        self._status = NetworkStatus.UP
        self._device = None
        self._listeners: List[StatusListener] = []
        #: Per-run fault realization; None = the reliable, single-attempt
        #: transport (the guaranteed-identity fast path).
        self._faults = faults
        self._recorder = recorder
        #: Retry attempts that fired while the link was down, resumed in
        #: arrival order when the link comes back up.
        self._parked: List[Tuple[Notification, DeliveryMode, int]] = []
        self.deliveries = 0
        self.retractions = 0
        self.bytes_carried = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_device(self, device) -> None:
        """Connect the mobile device this link serves.

        A link carries exactly one device: attaching a second one would
        silently reroute deliveries scheduled for the first (latency
        deliveries capture the device at send time, immediate ones at
        receive time — a split-brain bug). Re-attaching the same device
        is an idempotent no-op.
        """
        if self._device is not None and device is not self._device:
            raise ConfigurationError(
                "a device is already attached to this link; "
                "one LastHopLink serves exactly one device"
            )
        self._device = device

    def add_status_listener(self, listener: StatusListener) -> None:
        """Register a callback fired on every status transition (the
        proxy's ``NETWORK(status)`` handler, typically)."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    @property
    def status(self) -> NetworkStatus:
        return self._status

    @property
    def up(self) -> bool:
        return self._status is NetworkStatus.UP

    def set_status(self, status: NetworkStatus) -> None:
        """Transition the link; listeners fire only on actual change."""
        if status is self._status:
            return
        self._status = status
        if status is NetworkStatus.UP and self._parked:
            # Resume parked retries before the listeners run, so their
            # zero-delay events precede anything a listener schedules.
            parked, self._parked = self._parked, []
            for notification, mode, attempt in parked:
                self._sim.schedule(0.0, self._attempt, notification, mode, attempt)
        for listener in self._listeners:
            listener(status)

    # ------------------------------------------------------------------
    # Transport protocol (proxy -> device)
    # ------------------------------------------------------------------
    def deliver(self, notification: Notification, mode: DeliveryMode) -> None:
        """Carry one notification to the device.

        Raises :class:`ProxyError` if called while down — the proxy's
        ``try_forwarding`` must gate on the link status, and a violation
        is a bug worth failing loudly on.
        """
        self._require_up("deliver")
        if self._faults is None:
            self.deliveries += 1
            self.bytes_carried += notification.size_bytes
            if self._latency > 0:
                self._sim.schedule(self._latency, self._device.receive, notification, mode)
            else:
                self._device.receive(notification, mode)
            return
        self._attempt(notification, mode, 1)

    def _attempt(
        self, notification: Notification, mode: DeliveryMode, attempt: int
    ) -> None:
        """One acknowledged transfer attempt under the fault plan.

        In-simulation the proxy learns synchronously whether the attempt
        was lost (modelling the ack timeout having fired); a lost
        attempt is retried after a capped exponential backoff, a retry
        landing during an outage parks until reconnection, and the
        transfer is abandoned once the retry budget is spent.
        """
        if self._device is None:
            raise ProxyError("cannot deliver: no device attached to the link")
        if not self.up:
            self._parked.append((notification, mode, attempt))
            return
        plan = self._faults
        # Every attempt — lost or not — consumes last-hop bytes.
        self.bytes_carried += notification.size_bytes
        if plan.drop_delivery(notification.event_id, attempt):
            self._stats.delivery_drops += 1
            if self._recorder is not None:
                self._recorder.delivery_drop(
                    self._sim.now, notification.topic, notification.event_id,
                    attempt,
                )
            if attempt > plan.spec.max_retries:
                self._stats.delivery_failures += 1
                return
            self._stats.delivery_retries += 1
            self._sim.schedule(
                plan.retry_backoff(attempt), self._attempt,
                notification, mode, attempt + 1,
            )
            return
        self.deliveries += 1
        delay = self._latency + plan.delivery_jitter(notification.event_id, attempt)
        if delay > 0:
            self._sim.schedule(delay, self._device.receive, notification, mode)
        else:
            self._device.receive(notification, mode)
        if plan.duplicate_delivery(notification.event_id):
            self.deliveries += 1
            self.bytes_carried += notification.size_bytes
            self._stats.duplicates_delivered += 1
            if self._recorder is not None:
                self._recorder.duplicate_delivery(
                    self._sim.now, notification.topic, notification.event_id
                )
            if delay > 0:
                self._sim.schedule(delay, self._device.receive, notification, mode)
            else:
                self._device.receive(notification, mode)

    def deliver_batch(self, notification: Notification) -> None:
        """Fused delivery for batched fleet dispatch.

        The caller (:meth:`repro.proxy.proxy.LastHopProxy._forward_batch`
        via the batch dispatcher) guarantees the link is up, carries no
        fault plan, and has zero latency — so metering plus a direct
        device hand-off replicates :meth:`deliver` exactly.
        """
        self.deliveries += 1
        self.bytes_carried += notification.size_bytes
        self._device.receive_batch(notification)

    def retract(self, event_id: EventId) -> None:
        """Carry a rank-drop retraction to the device.

        Retractions are tiny control messages; the fault plan leaves
        them reliable (the device-side retract is idempotent anyway, so
        a lost retraction would only convert to later waste, not an
        inconsistency).
        """
        self._require_up("retract")
        self.retractions += 1
        self.bytes_carried += RETRACTION_SIZE_BYTES
        if self._latency > 0:
            self._sim.schedule(self._latency, self._device.retract, event_id)
        else:
            self._device.retract(event_id)

    def _require_up(self, action: str) -> None:
        if self._device is None:
            raise ProxyError(f"cannot {action}: no device attached to the link")
        if not self.up:
            raise ProxyError(f"cannot {action}: the last-hop link is down")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LastHopLink({self._status.value}, {self.deliveries} deliveries, "
            f"{self.bytes_carried} bytes)"
        )
