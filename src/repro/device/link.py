"""The last-hop link between the proxy and the mobile device.

The link is the scarce resource the whole paper is about: it goes up and
down according to the outage schedule, carries proxy-to-device
deliveries and retractions, and meters every transfer. "We view periods
of unacceptably slow network performance as outages" — so the model has
only two states, UP and DOWN.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.broker.message import Notification
from repro.errors import ConfigurationError, ProxyError
from repro.metrics.accounting import RunStats
from repro.sim.engine import Simulator
from repro.types import DeliveryMode, EventId, NetworkStatus

#: Size of a rank-drop retraction control message (an id plus headers).
RETRACTION_SIZE_BYTES: int = 32

StatusListener = Callable[[NetworkStatus], None]


class LastHopLink:
    """A metered, outage-prone downlink implementing the proxy's
    :class:`~repro.proxy.proxy.Transport` protocol."""

    def __init__(
        self,
        sim: Simulator,
        stats: Optional[RunStats] = None,
        latency: float = 0.0,
    ) -> None:
        if latency < 0:
            raise ConfigurationError(f"latency must be non-negative, got {latency}")
        self._sim = sim
        self._stats = stats if stats is not None else RunStats()
        self._latency = latency
        self._status = NetworkStatus.UP
        self._device = None
        self._listeners: List[StatusListener] = []
        self.deliveries = 0
        self.retractions = 0
        self.bytes_carried = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_device(self, device) -> None:
        """Connect the mobile device this link serves."""
        self._device = device

    def add_status_listener(self, listener: StatusListener) -> None:
        """Register a callback fired on every status transition (the
        proxy's ``NETWORK(status)`` handler, typically)."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    @property
    def status(self) -> NetworkStatus:
        return self._status

    @property
    def up(self) -> bool:
        return self._status is NetworkStatus.UP

    def set_status(self, status: NetworkStatus) -> None:
        """Transition the link; listeners fire only on actual change."""
        if status is self._status:
            return
        self._status = status
        for listener in self._listeners:
            listener(status)

    # ------------------------------------------------------------------
    # Transport protocol (proxy -> device)
    # ------------------------------------------------------------------
    def deliver(self, notification: Notification, mode: DeliveryMode) -> None:
        """Carry one notification to the device.

        Raises :class:`ProxyError` if called while down — the proxy's
        ``try_forwarding`` must gate on the link status, and a violation
        is a bug worth failing loudly on.
        """
        self._require_up("deliver")
        self.deliveries += 1
        self.bytes_carried += notification.size_bytes
        if self._latency > 0:
            self._sim.schedule(self._latency, self._device.receive, notification, mode)
        else:
            self._device.receive(notification, mode)

    def retract(self, event_id: EventId) -> None:
        """Carry a rank-drop retraction to the device."""
        self._require_up("retract")
        self.retractions += 1
        self.bytes_carried += RETRACTION_SIZE_BYTES
        if self._latency > 0:
            self._sim.schedule(self._latency, self._device.retract, event_id)
        else:
            self._device.retract(event_id)

    def _require_up(self, action: str) -> None:
        if self._device is None:
            raise ProxyError(f"cannot {action}: no device attached to the link")
        if not self.up:
            raise ProxyError(f"cannot {action}: the last-hop link is down")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LastHopLink({self._status.value}, {self.deliveries} deliveries, "
            f"{self.bytes_carried} bytes)"
        )
