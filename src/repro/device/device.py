"""The mobile client device.

Holds the per-topic queue of unread notifications, expires them locally,
honours the storage cap and battery budget, and implements the user's
ranked Max/Threshold reads. A read first runs the paper's READ exchange
with the proxy (when the link is up) so the proxy can ship better data,
then consumes the top-N acceptable notifications from the local queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.broker.message import Notification
from repro.device.battery import Battery
from repro.device.link import LastHopLink
from repro.device.storage import StoragePolicy
from repro.errors import BatteryExhaustedError, ConfigurationError, DeviceError
from repro.faults import FaultPlan
from repro.metrics.accounting import RunStats
from repro.proxy.queues import RankedQueue
from repro.sim.engine import EventHandle, Simulator
from repro.types import DeliveryMode, EventId, NetworkStatus, RunOutcome, TopicId


@dataclass(frozen=True)
class ReadOutcome:
    """What one user read produced."""

    consumed: Tuple[Notification, ...]
    #: Notifications the proxy shipped during the READ exchange.
    fetched: int
    #: True if the link was down and only the local queue was available.
    offline: bool

    @property
    def count(self) -> int:
        return len(self.consumed)


class ClientDevice:
    """One mobile device, subscribed to one or more topics via its proxy."""

    def __init__(
        self,
        sim: Simulator,
        link: LastHopLink,
        stats: Optional[RunStats] = None,
        battery: Optional[Battery] = None,
        storage: StoragePolicy = StoragePolicy(),
        report_on_reconnect: bool = True,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        storage.validate()
        self._sim = sim
        self._link = link
        self._stats = stats if stats is not None else RunStats()
        self._battery = battery
        self._storage = storage
        #: Per-run fault realization; used only to corrupt the offline
        #: read-report log (stale/duplicated entries). None = no faults.
        self._faults = faults
        self._queues: Dict[TopicId, RankedQueue] = {}
        self._thresholds: Dict[TopicId, float] = {}
        self._topic_of: Dict[EventId, TopicId] = {}
        self._expiry_handles: Dict[EventId, EventHandle] = {}
        #: Reads performed while the link was down, reported to the proxy
        #: on reconnection so its adaptive moving averages see them.
        self._offline_reads: Dict[TopicId, List[Tuple[float, int]]] = {}
        self._proxy = None
        self.dead = False
        #: When the link comes back up, announce current per-topic queue
        #: occupancy to the proxy. Mobile devices must announce
        #: themselves on reconnection anyway (that is how the proxy
        #: learns the link is usable), and piggybacking the queue size
        #: keeps the proxy's prefetch accounting from going stale across
        #: outages. Disable for a strictly Figure-7-faithful proxy that
        #: only learns queue sizes from READ exchanges.
        self._report_on_reconnect = report_on_reconnect
        link.attach_device(self)
        link.add_status_listener(self._on_link_status)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_proxy(self, proxy) -> None:
        """Connect the proxy serving this device (for READ exchanges)."""
        self._proxy = proxy

    def add_topic(self, topic: TopicId, threshold: float = 0.0) -> None:
        """Track a topic the device subscribes to."""
        if topic in self._queues:
            raise ConfigurationError(f"topic {topic!r} already tracked by device")
        self._queues[topic] = RankedQueue()
        self._thresholds[topic] = threshold

    @property
    def battery(self) -> Optional[Battery]:
        return self._battery

    # ------------------------------------------------------------------
    # Queue inspection
    # ------------------------------------------------------------------
    def queue_size(self, topic: TopicId) -> int:
        """Unread notifications currently held for ``topic``."""
        return len(self._queue(topic))

    def top_events(self, topic: TopicId, n: int) -> List[Tuple[EventId, float]]:
        """The (id, rank) pairs of the N highest-ranked unread
        notifications — the ``client_events`` of the READ exchange."""
        return [(m.event_id, m.rank) for m in self._queue(topic).top_n(n)]

    def unread(self, topic: TopicId) -> List[Notification]:
        """All unread notifications for a topic, highest rank first."""
        return list(self._queue(topic))

    def iter_unread(self, topic: TopicId) -> Iterator[Notification]:
        """Lazily iterate unread notifications, highest rank first.

        Consumers that stop early (e.g. a threshold cut-off) pay only
        for the prefix they consume; the queue must not be mutated
        while the iterator is live.
        """
        return iter(self._queue(topic))

    def threshold(self, topic: TopicId) -> float:
        """The subscription Threshold the device applies to a topic."""
        self._queue(topic)  # raises DeviceError for unknown topics
        return self._thresholds[topic]

    def take(self, topic: TopicId, event_id: EventId) -> Optional[Notification]:
        """Remove one unread notification and hand it to the caller.

        Used by multi-device cache cooperation: a peer device serves the
        notification to the user, so it leaves this device's queue
        without being counted as read *by this device*. Returns None if
        the notification is not queued here.
        """
        notification = self._queue(topic).get(event_id)
        if notification is None:
            return None
        self._drop(event_id)
        return notification

    def _queue(self, topic: TopicId) -> RankedQueue:
        try:
            return self._queues[topic]
        except KeyError:
            raise DeviceError(f"device does not track topic {topic!r}") from None

    # ------------------------------------------------------------------
    # Downlink (called by the link)
    # ------------------------------------------------------------------
    def receive(self, notification: Notification, mode: DeliveryMode) -> None:
        """Accept one notification from the last hop."""
        if self.dead:
            return
        queue = self._queue(notification.topic)
        known_topic = self._topic_of.get(notification.event_id)
        if known_topic is not None:
            if known_topic != notification.topic:
                # Event ids are allocated globally by the routing substrate;
                # a cross-topic collision indicates a wiring bug upstream.
                raise DeviceError(
                    f"event {notification.event_id} already tracked under topic "
                    f"{known_topic!r}, cannot also arrive on {notification.topic!r}"
                )
            # Duplicate delivery (a retry raced its ack, a fault-plan
            # duplicate, or a replication failover re-shipped): the copy
            # is discarded here, making deliveries idempotent at the
            # device while the first copy is still unread.
            self._stats.duplicates_deduped += 1
            return
        if self._battery is not None:
            try:
                self._battery.drain_receive(notification.size_bytes)
            except BatteryExhaustedError:
                self._die()
                return
        for victim in self._storage.evict_for(queue, notification):
            if victim.event_id == notification.event_id:
                # The newcomer is the lowest-ranked: drop it outright.
                self._stats.displaced += 1
                return
            self._drop(victim.event_id)
            self._stats.displaced += 1
        queue.add(notification)
        self._topic_of[notification.event_id] = notification.topic
        if notification.expires_at is not None:
            handle = self._sim.schedule_at(
                max(self._sim.now, notification.expires_at),
                self._expire,
                notification.event_id,
            )
            self._expiry_handles[notification.event_id] = handle

    def receive_batch(self, notification: Notification) -> None:
        """Fused receive for batched fleet dispatch.

        The dispatcher guarantees what :meth:`receive` would otherwise
        re-check: the device is alive (no battery model), the event id
        is fresh (first delivery of a new arrival — duplicates require a
        fault plan, which disables fusion), and storage is unlimited —
        leaving the queue insert, the topic index, and the expiry timer.
        """
        queue = self._queues[notification.topic]
        queue.add(notification)
        self._topic_of[notification.event_id] = notification.topic
        if notification.expires_at is not None:
            handle = self._sim.schedule_at(
                max(self._sim.now, notification.expires_at),
                self._expire,
                notification.event_id,
            )
            self._expiry_handles[notification.event_id] = handle

    def retract(self, event_id: EventId) -> None:
        """Discard a rank-dropped notification announced by the proxy."""
        if self.dead:
            return
        if self._drop(event_id):
            self._stats.retracted_on_device += 1

    def _drop(self, event_id: EventId) -> bool:
        """Remove an unread notification wherever it is. True if found."""
        topic = self._topic_of.pop(event_id, None)
        handle = self._expiry_handles.pop(event_id, None)
        if handle is not None:
            handle.cancel()
        if topic is None:
            return False
        return self._queues[topic].remove(event_id) is not None

    def _expire(self, event_id: EventId) -> None:
        self._expiry_handles.pop(event_id, None)
        if self._drop(event_id):
            self._stats.expired_on_device += 1

    def _die(self) -> None:
        self.dead = True
        self._stats.outcome = RunOutcome.BATTERY_DEAD

    def _on_link_status(self, status: NetworkStatus) -> None:
        """Reconnection hook: report queue occupancy to the proxy."""
        if status is not NetworkStatus.UP:
            return
        if self.dead or not self._report_on_reconnect or self._proxy is None:
            return
        for topic, queue in self._queues.items():
            self._proxy.on_queue_report(topic, len(queue))
            backlog = self._offline_reads.pop(topic, None)
            if backlog:
                if self._faults is not None:
                    backlog, injected = self._faults.corrupt_read_report(
                        topic, backlog
                    )
                    self._stats.report_entries_corrupted += injected
                self._proxy.on_read_report(topic, backlog)

    # ------------------------------------------------------------------
    # User reads
    # ------------------------------------------------------------------
    def perform_read(self, topic: TopicId, n: int) -> ReadOutcome:
        """Execute one user read on a topic.

        When the link is up, first runs the READ exchange so the proxy
        can ship anything better than what the device holds; then
        consumes the top-N acceptable notifications locally. When the
        link is down, only the local queue is available — exactly the
        situation prefetching exists to prepare for.
        """
        self._stats.reads += 1
        if self.dead:
            self._stats.empty_reads += 1
            return ReadOutcome(consumed=(), fetched=0, offline=True)

        fetched = 0
        offline = not self._link.up
        if offline:
            self._stats.reads_during_outage += 1
            if self._report_on_reconnect:
                self._offline_reads.setdefault(topic, []).append((self._sim.now, n))
        elif self._proxy is not None:
            response = self._proxy.on_read(
                topic,
                n,
                queue_size=self.queue_size(topic),
                client_events=self.top_events(topic, n),
            )
            fetched = len(response.sent)

        consumed = self._consume(topic, n)
        if not consumed:
            self._stats.empty_reads += 1
        return ReadOutcome(consumed=tuple(consumed), fetched=fetched, offline=offline)

    def _consume(self, topic: TopicId, n: int) -> List[Notification]:
        """Read (and remove) up to N acceptable unread notifications."""
        queue = self._queue(topic)
        threshold = self._thresholds[topic]
        now = self._sim.now
        consumed: List[Notification] = []
        for candidate in queue.top_n(n):
            if candidate.rank < threshold:
                break  # top_n is rank-ordered; nothing below qualifies
            if candidate.is_expired(now):
                continue  # expiry timer fires this timestamp; skip it
            consumed.append(candidate)
        for item in consumed:
            queue.remove(item.event_id)
            self._topic_of.pop(item.event_id, None)
            handle = self._expiry_handles.pop(item.event_id, None)
            if handle is not None:
                handle.cancel()
            self._stats.record_read(item.event_id, now - item.published_at)
        if self._battery is not None and consumed:
            try:
                self._battery.drain_read(len(consumed))
            except BatteryExhaustedError:
                self._die()
        return consumed
