"""Multi-device cache cooperation (the paper's §4 future work).

"In the future we want to look into cooperation among multiple devices
belonging to one user. Their interaction, perhaps with the aid of an
ad-hoc network, has the potential for reducing both loss and waste by
allowing one device to use the cache of another."

A :class:`DeviceGroup` joins the devices of one user over an
:class:`AdHocNetwork`. Reads are performed on one *reader* device; when
peers are reachable over the ad-hoc network, the read draws from the
union of all caches, so a notification prefetched to the laptop can be
read on the phone while the phone's own wide-area link is down —
reducing loss (more cache survives outages) and waste (messages on any
device can still be read).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.broker.message import Notification
from repro.device.device import ClientDevice
from repro.errors import ConfigurationError, DeviceError
from repro.metrics.accounting import RunStats
from repro.sim.engine import Simulator
from repro.sim.rng import RandomSource
from repro.types import TopicId


class AdHocNetwork:
    """Reachability between a user's co-located devices.

    ``availability`` is the probability that the ad-hoc hop works at the
    moment of a read (devices may be in different bags, Bluetooth may be
    off, …). 1.0 models devices that are always together.
    """

    def __init__(self, availability: float = 1.0, rng: Optional[RandomSource] = None):
        if not 0.0 <= availability <= 1.0:
            raise ConfigurationError(
                f"availability must be within [0, 1], got {availability}"
            )
        self._availability = availability
        self._rng = rng or RandomSource(0)

    @property
    def availability(self) -> float:
        return self._availability

    def reachable(self) -> bool:
        """Whether the ad-hoc hop works right now."""
        if self._availability >= 1.0:
            return True
        if self._availability <= 0.0:
            return False
        return self._rng.bernoulli(self._availability)


@dataclass(frozen=True)
class GroupReadOutcome:
    """What one cooperative read produced."""

    consumed: Tuple[Notification, ...]
    #: Notifications served from a peer's cache over the ad-hoc network.
    borrowed: int
    #: Notifications the reader's proxy shipped during the READ exchange.
    fetched: int
    #: Whether peers were reachable for this read.
    peers_reachable: bool

    @property
    def count(self) -> int:
        return len(self.consumed)


class DeviceGroup:
    """The devices of one user, cooperating on reads.

    The first device added is the *reader* — the one the user actually
    checks messages on (a phone). Peers (a laptop, a tablet) receive
    prefetched notifications through their own proxies and lend their
    caches to the reader's reads.
    """

    def __init__(
        self,
        sim: Simulator,
        stats: RunStats,
        adhoc: Optional[AdHocNetwork] = None,
    ) -> None:
        self._sim = sim
        self._stats = stats
        self._adhoc = adhoc or AdHocNetwork()
        self._devices: List[ClientDevice] = []
        self.borrowed_total = 0

    def add_device(self, device: ClientDevice) -> None:
        """Add a device; the first one becomes the reader."""
        self._devices.append(device)

    @property
    def reader(self) -> ClientDevice:
        if not self._devices:
            raise DeviceError("device group is empty")
        return self._devices[0]

    @property
    def devices(self) -> List[ClientDevice]:
        return list(self._devices)

    def queue_size(self, topic: TopicId) -> int:
        """Unread notifications across the whole group."""
        return sum(device.queue_size(topic) for device in self._devices)

    def perform_read(self, topic: TopicId, n: int) -> GroupReadOutcome:
        """One user read on the reader device, drawing on all caches.

        The reader first runs its normal READ exchange with its proxy
        (when its wide-area link is up); the consumption step then
        selects the N highest-ranked acceptable notifications across
        every reachable device and removes each from its owner.
        """
        reader = self.reader
        peers_reachable = len(self._devices) > 1 and self._adhoc.reachable()

        # The reader's own READ exchange (pulls "better" data if any).
        outcome = reader.perform_read(topic, n)
        consumed: List[Notification] = list(outcome.consumed)
        fetched = outcome.fetched
        borrowed = 0

        # Top up from peer caches over the ad-hoc network.
        if peers_reachable and len(consumed) < n:
            threshold = reader.threshold(topic)
            now = self._sim.now
            candidates: List[Tuple[Notification, ClientDevice]] = []
            for peer in self._devices[1:]:
                if peer.dead:
                    continue
                # Lazy iteration: the threshold cut-off stops after the
                # acceptable prefix instead of materializing (and rank-
                # sorting) the peer's whole cache on every read.
                for notification in peer.iter_unread(topic):
                    if notification.rank < threshold:
                        break  # iteration is rank-ordered
                    if notification.is_expired(now):
                        continue
                    if notification.event_id in self._stats.read_ids:
                        continue  # already read on another device
                    candidates.append((notification, peer))
            candidates.sort(key=lambda pair: -pair[0].rank)
            picked = {m.event_id for m in consumed}
            for notification, peer in candidates:
                if len(consumed) >= n:
                    break
                if notification.event_id in picked:
                    continue  # replicated onto several peers
                taken = peer.take(topic, notification.event_id)
                if taken is None:
                    continue
                picked.add(taken.event_id)
                self._stats.record_read(taken.event_id, now - taken.published_at)
                consumed.append(taken)
                borrowed += 1

        self.borrowed_total += borrowed
        return GroupReadOutcome(
            consumed=tuple(consumed),
            borrowed=borrowed,
            fetched=fetched,
            peers_reachable=peers_reachable,
        )
