"""Exception hierarchy for the repro library.

Every error raised intentionally by this package derives from
:class:`ReproError` so that callers can catch library failures without
masking genuine programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly.

    Raised, for example, when scheduling an event in the past or when
    running a simulator that has already been exhausted.
    """


class ConfigurationError(ReproError):
    """A scenario, workload, or policy configuration is invalid."""


class RoutingError(ReproError):
    """The broker overlay could not route a message or subscription."""


class UnknownTopicError(RoutingError):
    """An operation referenced a topic that was never advertised."""


class SubscriptionError(ReproError):
    """A subscribe/unsubscribe call was malformed or redundant."""


class DeviceError(ReproError):
    """The client device was driven into an invalid state."""


class BatteryExhaustedError(DeviceError):
    """The device battery budget has been spent; the device is inoperable."""


class ExportError(ReproError):
    """An export target (tables, trace JSONL) could not be written."""


class ProxyError(ReproError):
    """The last-hop proxy was driven into an invalid state."""


class ReplicationError(ProxyError):
    """Primary/backup proxy replication failed or was misused."""
