"""Shared enums and type aliases.

These small vocabulary types are used across packages; keeping them in
one module avoids circular imports between the broker, proxy, and device
layers.
"""

from __future__ import annotations

import enum
from typing import NewType

#: Identifier of a notification. Unique per published event.
EventId = NewType("EventId", int)

#: Identifier of a topic, e.g. ``"news/weather/tromso"``.
TopicId = NewType("TopicId", str)

#: Identifier of a node (broker, proxy, publisher, or device).
NodeId = NewType("NodeId", str)


class TopicType(enum.Enum):
    """How the user wants notifications on a topic delivered (paper §2.2).

    ``ONLINE`` topics are forwarded over the last hop as soon as the
    connection allows; ``ON_DEMAND`` topics are optimized using the
    volume-limiting parameters and prefetching.
    """

    ONLINE = "on-line"
    ON_DEMAND = "on-demand"


class NetworkStatus(enum.Enum):
    """State of the last-hop link between the proxy and the device."""

    UP = "up"
    DOWN = "down"


class PolicyKind(enum.Enum):
    """Forwarding policy families evaluated in the paper (§3.1–§3.5)."""

    #: Forward every acceptable notification as soon as the network allows.
    #: Zero loss by definition; serves as the quality-of-service baseline.
    ONLINE = "online"

    #: Hold everything at the proxy until the user explicitly reads.
    #: Zero waste by definition.
    ON_DEMAND = "on-demand"

    #: Keep at most ``prefetch_limit`` unread notifications on the device.
    BUFFER = "buffer"

    #: Forward a fraction of arrivals matching the consumption/production
    #: rate ratio.
    RATE = "rate"

    #: The paper's Figure 7 algorithm: buffer-based prefetching with an
    #: adaptive limit, an adaptive expiration threshold with a holding
    #: queue, and an optional delay stage for rank-unstable topics.
    UNIFIED = "unified"


class DeliveryMode(enum.Enum):
    """Why a message crossed the last hop (used by accounting)."""

    PUSHED = "pushed"  #: forwarded proactively (on-line or prefetch)
    PULLED = "pulled"  #: shipped in response to a READ exchange


class RunOutcome(enum.Enum):
    """Terminal state of a scenario run."""

    COMPLETED = "completed"
    BATTERY_DEAD = "battery-dead"
