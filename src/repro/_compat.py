"""Small interpreter-compatibility helpers.

The package supports Python 3.9+, but several performance features are
only available on newer interpreters. Centralizing the feature checks
here keeps the call sites declarative.
"""

from __future__ import annotations

import sys
from typing import Any, Dict

#: Keyword arguments enabling ``__slots__`` generation on dataclasses.
#: ``@dataclass(slots=True)`` exists from Python 3.10; on 3.9 the
#: decorator falls back to ordinary ``__dict__``-backed instances, which
#: are correct but allocate more and read attributes slower. High-volume
#: record types (notifications, trace records, scheduler entries) use
#: ``@dataclass(**DATACLASS_SLOTS)`` so hot runs on modern interpreters
#: get the compact layout for free.
DATACLASS_SLOTS: Dict[str, Any] = {"slots": True} if sys.version_info >= (3, 10) else {}
