"""Sampled invariant auditing of live runs.

The property-test suite already checks the Figure 7 structural
invariants after randomized operation sequences, but real (year-long)
runs execute millions of proxy transitions unaudited. An
:class:`Auditor` closes that gap: the proxy calls
:meth:`Auditor.maybe_audit` after every transition (NOTIFICATION, READ,
NETWORK, and the expiration/delay/quiet timers), and every ``interval``
transitions the auditor runs the full invariant battery —
:func:`repro.proxy.invariants.check_topic_state` plus the engine-level
checks of :meth:`repro.sim.engine.Simulator.audit` — against the live
state.

On a violation it raises
:class:`~repro.proxy.invariants.InvariantViolation` with the most recent
trace records attached (``exc.trace_context``), so the failure names not
just *what* broke but the delivery-path events that led up to it.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.obs.records import ObsRecord, as_dict
from repro.obs.recorder import TraceRecorder
from repro.proxy.invariants import InvariantViolation, check_topic_state

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.proxy.state import TopicState
    from repro.sim.engine import Simulator

#: How many trailing trace records a violation carries as context.
DEFAULT_CONTEXT: int = 32


class Auditor:
    """Samples proxy transitions and asserts the structural invariants.

    ``interval=1`` audits every transition (the CI smoke setting);
    larger intervals amortize the O(queued) invariant sweep over more
    transitions for production-sized runs. The auditor may be shared by
    several runs in sequence — it keeps only counters.
    """

    __slots__ = ("interval", "transitions", "audits", "_countdown", "_recorder",
                 "_context")

    def __init__(
        self,
        interval: int = 1,
        recorder: Optional[TraceRecorder] = None,
        context: int = DEFAULT_CONTEXT,
    ) -> None:
        if interval < 1:
            raise ConfigurationError(f"audit interval must be >= 1, got {interval}")
        if context < 0:
            raise ConfigurationError(f"audit context must be >= 0, got {context}")
        self.interval = interval
        self._countdown = interval
        self._recorder = recorder
        self._context = context
        #: Proxy transitions observed (audited or not).
        self.transitions = 0
        #: Full invariant sweeps performed.
        self.audits = 0

    def maybe_audit(self, sim: "Simulator", state: "TopicState") -> None:
        """Count one transition; audit when the sampling interval is due."""
        self.transitions += 1
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self.interval
        self.audit(sim, state)

    def audit(self, sim: "Simulator", state: "TopicState") -> None:
        """Run the full invariant battery now; raise on any violation."""
        self.audits += 1
        violations = check_topic_state(state, sim.now)
        violations.extend(sim.audit())
        if violations:
            self._raise(state, sim.now, violations)

    def _raise(self, state: "TopicState", now: float, violations: List[str]) -> None:
        context: List[ObsRecord] = (
            self._recorder.last(self._context) if self._recorder is not None else []
        )
        lines = [
            f"topic {state.topic!r} violates invariants at t={now:.3f} "
            f"(transition {self.transitions}):"
        ]
        lines.extend(f"  {violation}" for violation in violations)
        if context:
            lines.append(f"  last {len(context)} trace records:")
            lines.extend(f"    {as_dict(record)}" for record in context)
        error = InvariantViolation("\n".join(lines))
        error.violations = list(violations)
        error.trace_context = tuple(context)
        raise error
