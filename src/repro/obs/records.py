"""Typed observability records.

Each record captures one delivery-path event the proxy (or engine)
considered externally meaningful: a forward over the last hop, a
retraction, an expiry while still queued at the proxy, a rank change, a
READ exchange, a quiet-hours deferral, or a push-budget exhaustion.
Records are intentionally tiny slotted dataclasses — a year-long audited
run emits millions of them, and the ring buffer in
:mod:`repro.obs.recorder` holds only the most recent window.

``as_dict`` flattens any record into JSON-safe primitives for the JSONL
export (``--trace-out``); the ``kind`` class attribute doubles as the
schema discriminator.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import ClassVar, Tuple, Union

from repro._compat import DATACLASS_SLOTS


@dataclass(frozen=True, **DATACLASS_SLOTS)
class ForwardRecord:
    """One notification shipped proxy -> device (``do_forward``)."""

    kind: ClassVar[str] = "forward"
    time: float
    topic: str
    event_id: int
    mode: str  #: "PUSHED" or "PULLED"
    queue_size: int  #: proxy's client-queue estimate after the forward


@dataclass(frozen=True, **DATACLASS_SLOTS)
class RetractRecord:
    """A rank-drop retraction sent over the last hop."""

    kind: ClassVar[str] = "retract"
    time: float
    topic: str
    event_id: int


@dataclass(frozen=True, **DATACLASS_SLOTS)
class ExpireAtProxyRecord:
    """A notification expired while still held by the proxy.

    ``where`` names the site that detected it: ``arrival`` (dead on
    arrival), ``read`` (pruned during a READ exchange), ``outgoing`` /
    ``prefetch`` (caught while flushing), or ``timer`` (the expiration
    timeout fired while the event was still queued).
    """

    kind: ClassVar[str] = "expire-at-proxy"
    time: float
    topic: str
    event_id: int
    where: str


@dataclass(frozen=True, **DATACLASS_SLOTS)
class RankChangeRecord:
    """A rank-change announcement for a known event.

    ``outcome`` is what the proxy did about it: ``retracted`` (below
    threshold, already forwarded), ``dropped`` (below threshold, silently
    removed from the queues), or ``reordered`` (re-keyed in place).
    """

    kind: ClassVar[str] = "rank-change"
    time: float
    topic: str
    event_id: int
    old_rank: float
    new_rank: float
    outcome: str


@dataclass(frozen=True, **DATACLASS_SLOTS)
class ReadExchangeRecord:
    """One READ exchange served by the proxy."""

    kind: ClassVar[str] = "read-exchange"
    time: float
    topic: str
    n: int  #: requested read size
    candidates: int  #: queued candidates the proxy considered
    sent: int  #: notifications actually shipped (the "difference")
    queue_size: int  #: client queue estimate reported with the READ


@dataclass(frozen=True, **DATACLASS_SLOTS)
class QuietDeferRecord:
    """A proactive push deferred by a §2.2 quiet window."""

    kind: ClassVar[str] = "quiet-defer"
    time: float
    topic: str
    until: float  #: end of the quiet window (wake-up time)


@dataclass(frozen=True, **DATACLASS_SLOTS)
class BudgetExhaustRecord:
    """A proactive push blocked because the daily push budget is spent."""

    kind: ClassVar[str] = "budget-exhaust"
    time: float
    topic: str
    event_id: int


@dataclass(frozen=True, **DATACLASS_SLOTS)
class DeliveryDropRecord:
    """A last-hop delivery attempt lost by the fault plan."""

    kind: ClassVar[str] = "delivery-drop"
    time: float
    topic: str
    event_id: int
    attempt: int  #: 1 = the initial transfer, 2+ = retries


@dataclass(frozen=True, **DATACLASS_SLOTS)
class DuplicateDeliveryRecord:
    """A successfully delivered notification shipped a second time."""

    kind: ClassVar[str] = "duplicate-delivery"
    time: float
    topic: str
    event_id: int


@dataclass(frozen=True, **DATACLASS_SLOTS)
class CrashRecord:
    """The proxy process crashed: timers and in-flight state torn down."""

    kind: ClassVar[str] = "crash"
    time: float


@dataclass(frozen=True, **DATACLASS_SLOTS)
class RecoverRecord:
    """The proxy restarted and rebuilt its state from retained history."""

    kind: ClassVar[str] = "recover"
    time: float
    downtime: float  #: seconds the proxy was down
    requeued: int  #: history events re-enqueued during recovery


#: Everything the recorder can hold.
ObsRecord = Union[
    ForwardRecord,
    RetractRecord,
    ExpireAtProxyRecord,
    RankChangeRecord,
    ReadExchangeRecord,
    QuietDeferRecord,
    BudgetExhaustRecord,
    DeliveryDropRecord,
    DuplicateDeliveryRecord,
    CrashRecord,
    RecoverRecord,
]

#: All record types, for schema introspection and tests.
RECORD_TYPES: Tuple[type, ...] = (
    ForwardRecord,
    RetractRecord,
    ExpireAtProxyRecord,
    RankChangeRecord,
    ReadExchangeRecord,
    QuietDeferRecord,
    BudgetExhaustRecord,
    DeliveryDropRecord,
    DuplicateDeliveryRecord,
    CrashRecord,
    RecoverRecord,
)


def as_dict(record: ObsRecord) -> dict:
    """Flatten a record into JSON-safe primitives, ``kind`` first."""
    out = {"kind": record.kind}
    for field in dataclasses.fields(record):
        out[field.name] = getattr(record, field.name)
    return out
