"""Runtime observability: structured tracing, invariant audits, probes.

Three cooperating pieces, all off by default and individually cheap:

* :class:`~repro.obs.recorder.TraceRecorder` — a bounded ring buffer of
  typed delivery-path records (:mod:`repro.obs.records`) the proxy
  appends to, exportable as JSONL (the CLI's ``--trace-out``);
* :class:`~repro.obs.audit.Auditor` — sampled invariant auditing of
  live runs (the CLI's ``--audit[=N]``): every N proxy transitions the
  full structural-invariant battery runs against the live state, and a
  violation raises with the trailing trace records attached;
* :data:`~repro.obs.probes.PROBES` — per-phase wall-clock/counter
  probes over the experiment pipeline (trace-build, baseline, variant,
  scatter), summarized by :func:`summarize_obs`.

The pieces are wired process-globally via :func:`configure` (mirroring
:mod:`repro.sim.trace_cache`), so the experiment runner picks them up
without threading parameters through every figure module, and the
parallel executor can re-apply the same configuration inside worker
processes. When nothing is configured, every instrumented site reduces
to a single ``if`` on a ``None`` or a false flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.audit import DEFAULT_CONTEXT, Auditor
from repro.obs.probes import PROBES, PhaseProbes, PhaseSummary, summary_rows
from repro.obs.recorder import DEFAULT_CAPACITY, TraceRecorder, load_jsonl
from repro.obs.records import (
    BudgetExhaustRecord,
    CrashRecord,
    DeliveryDropRecord,
    DuplicateDeliveryRecord,
    ExpireAtProxyRecord,
    ForwardRecord,
    ObsRecord,
    QuietDeferRecord,
    RankChangeRecord,
    ReadExchangeRecord,
    RECORD_TYPES,
    RecoverRecord,
    RetractRecord,
    as_dict,
)
from repro.proxy.invariants import InvariantViolation

__all__ = [
    "Auditor",
    "BudgetExhaustRecord",
    "CrashRecord",
    "DEFAULT_CAPACITY",
    "DEFAULT_CONTEXT",
    "DeliveryDropRecord",
    "DuplicateDeliveryRecord",
    "ExpireAtProxyRecord",
    "ForwardRecord",
    "InvariantViolation",
    "ObsConfig",
    "ObsContext",
    "ObsRecord",
    "PROBES",
    "PhaseProbes",
    "PhaseSummary",
    "QuietDeferRecord",
    "RECORD_TYPES",
    "RankChangeRecord",
    "ReadExchangeRecord",
    "RecoverRecord",
    "RetractRecord",
    "TraceRecorder",
    "active",
    "active_config",
    "as_dict",
    "configure",
    "load_jsonl",
    "summarize_obs",
    "summary_rows",
]


@dataclass(frozen=True)
class ObsConfig:
    """Picklable observability settings (shippable to worker processes).

    ``audit_interval`` of N audits every Nth proxy transition (None =
    no auditing). ``trace_capacity`` bounds the trace ring (None = no
    explicit tracing; a default-sized ring is still created when
    auditing wants context records). ``probes`` enables the per-phase
    timing/counter probes.
    """

    audit_interval: Optional[int] = None
    audit_context: int = DEFAULT_CONTEXT
    trace_capacity: Optional[int] = None
    probes: bool = False

    @property
    def enabled(self) -> bool:
        return (
            self.audit_interval is not None
            or self.trace_capacity is not None
            or self.probes
        )


class ObsContext:
    """The live recorder/auditor pair built from an :class:`ObsConfig`."""

    __slots__ = ("config", "recorder", "auditor")

    def __init__(self, config: ObsConfig) -> None:
        self.config = config
        capacity = config.trace_capacity
        if (
            capacity is None
            and config.audit_interval is not None
            and config.audit_context > 0
        ):
            # Auditing wants trailing context even without --trace-out.
            capacity = DEFAULT_CAPACITY
        self.recorder: Optional[TraceRecorder] = (
            TraceRecorder(capacity) if capacity is not None else None
        )
        self.auditor: Optional[Auditor] = (
            Auditor(
                interval=config.audit_interval,
                recorder=self.recorder,
                context=config.audit_context,
            )
            if config.audit_interval is not None
            else None
        )


_active: Optional[ObsContext] = None


def configure(config: Optional[ObsConfig]) -> Optional[ObsContext]:
    """(Re)configure process-wide observability; returns the context.

    ``None`` (or a config with everything off) disables observability
    and resets the probe registry. Reconfiguring replaces the recorder
    and auditor, so prior trace records are dropped.
    """
    global _active
    if config is None or not config.enabled:
        _active = None
        PROBES.enabled = False
        PROBES.reset()
        return None
    _active = ObsContext(config)
    PROBES.enabled = config.probes
    PROBES.reset()
    return _active


def active() -> Optional[ObsContext]:
    """The currently configured context, or None when observability is off."""
    return _active


def active_config() -> Optional[ObsConfig]:
    """The active configuration (for propagation to worker processes)."""
    return None if _active is None else _active.config


def summarize_obs() -> dict:
    """One JSON-friendly snapshot of everything observability collected.

    Combines the probe registry's phase timings and counters with the
    active recorder's ring statistics and the auditor's sampling
    counters. Safe to call with observability off (returns the empty
    probe summary).
    """
    summary = PROBES.summary()
    counters = summary["counters"]
    ctx = _active
    if ctx is not None:
        if ctx.recorder is not None:
            counters["trace-records"] = ctx.recorder.recorded
            counters["trace-held"] = len(ctx.recorder)
            counters["trace-dropped"] = ctx.recorder.dropped
        if ctx.auditor is not None:
            counters["audit-transitions"] = ctx.auditor.transitions
            counters["audit-sweeps"] = ctx.auditor.audits
    return summary
