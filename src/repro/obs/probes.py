"""Per-phase timing and counter probes for the experiment pipeline.

The sweep/figure pipeline has four coarse phases per cell — trace
build, on-line baseline run, policy-variant run, and (for grouped
grids) the scatter merge. :data:`PROBES` accumulates wall-clock time
and call counts per phase, plus free-form counters (cache hits, runs,
events processed), so a slow sweep can be attributed to the phase that
actually ate the time.

Probes are process-local and disabled by default; every instrumented
site costs a single ``enabled`` check when off. They are intentionally
wall-clock (``time.perf_counter``) rather than simulated-time: the
question they answer is "where did my real seconds go".
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple


@dataclass(frozen=True)
class PhaseSummary:
    """Accumulated cost of one phase."""

    name: str
    calls: int
    total_seconds: float

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0


class PhaseProbes:
    """Accumulates per-phase wall time and named counters."""

    __slots__ = ("enabled", "_phases", "_counters")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        #: phase name -> [calls, total seconds]
        self._phases: Dict[str, List[float]] = {}
        self._counters: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one phase execution (no-op when disabled)."""
        if not self.enabled:
            yield
            return
        started = time.perf_counter()
        try:
            yield
        finally:
            entry = self._phases.get(name)
            if entry is None:
                entry = self._phases[name] = [0, 0.0]
            entry[0] += 1
            entry[1] += time.perf_counter() - started

    def count(self, name: str, delta: int = 1) -> None:
        """Bump a named counter (no-op when disabled)."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + delta

    # ------------------------------------------------------------------
    def phases(self) -> List[PhaseSummary]:
        """Summaries of every timed phase, most expensive first."""
        return sorted(
            (
                PhaseSummary(name=name, calls=int(calls), total_seconds=total)
                for name, (calls, total) in self._phases.items()
            ),
            key=lambda s: -s.total_seconds,
        )

    def counters(self) -> Dict[str, int]:
        return dict(self._counters)

    def reset(self) -> None:
        self._phases.clear()
        self._counters.clear()

    def summary(self) -> Dict[str, object]:
        """JSON-friendly snapshot: phases plus counters."""
        return {
            "phases": {
                s.name: {"calls": s.calls, "seconds": s.total_seconds}
                for s in self.phases()
            },
            "counters": self.counters(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return f"PhaseProbes({state}, {len(self._phases)} phases)"


#: The process-wide probe registry every instrumented site consults.
PROBES = PhaseProbes()


def summary_rows(summary: Dict[str, object]) -> List[Tuple[str, int, float]]:
    """Flatten a :meth:`PhaseProbes.summary` into (phase, calls, seconds)
    rows followed by (counter, value, 0.0) rows — the table layout the
    report module renders."""
    rows: List[Tuple[str, int, float]] = []
    phases = summary.get("phases", {})
    for name, entry in phases.items():
        rows.append((name, int(entry["calls"]), float(entry["seconds"])))
    for name, value in summary.get("counters", {}).items():
        rows.append((name, int(value), 0.0))
    return rows
