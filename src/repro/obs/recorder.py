"""Bounded structured trace recorder.

A :class:`TraceRecorder` is a ring buffer of typed
:mod:`repro.obs.records`: the proxy appends one record per interesting
delivery-path event, the buffer keeps only the most recent ``capacity``
of them, and :meth:`TraceRecorder.export_jsonl` dumps the window as
JSON-lines for offline analysis (the CLI's ``--trace-out``).

The recorder is deliberately dumb and fast: every ``record_*`` method is
one dataclass allocation plus a deque append. The proxy guards each call
site with a single ``if recorder is not None`` so a run without
observability pays nothing.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Deque, List, Optional, Union

from repro.errors import ConfigurationError, ExportError
from repro.obs.records import (
    BudgetExhaustRecord,
    CrashRecord,
    DeliveryDropRecord,
    DuplicateDeliveryRecord,
    ExpireAtProxyRecord,
    ForwardRecord,
    ObsRecord,
    QuietDeferRecord,
    RankChangeRecord,
    ReadExchangeRecord,
    RecoverRecord,
    RetractRecord,
    as_dict,
)

#: Default ring size: deep enough to reconstruct how a run got into a
#: bad state, small enough that year-long runs stay bounded.
DEFAULT_CAPACITY: int = 4096


class TraceRecorder:
    """Ring buffer of delivery-path records."""

    __slots__ = ("_buffer", "_capacity", "recorded")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ConfigurationError(f"trace capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._buffer: Deque[ObsRecord] = deque(maxlen=capacity)
        #: Records ever appended (including ones the ring has evicted).
        self.recorded = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def dropped(self) -> int:
        """Records evicted by the ring bound so far."""
        return self.recorded - len(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    # ------------------------------------------------------------------
    # Record sites (one per delivery-path event kind)
    # ------------------------------------------------------------------
    def forward(
        self, time: float, topic: str, event_id: int, mode: str, queue_size: int
    ) -> None:
        self.recorded += 1
        self._buffer.append(ForwardRecord(time, topic, event_id, mode, queue_size))

    def retract(self, time: float, topic: str, event_id: int) -> None:
        self.recorded += 1
        self._buffer.append(RetractRecord(time, topic, event_id))

    def expire_at_proxy(
        self, time: float, topic: str, event_id: int, where: str
    ) -> None:
        self.recorded += 1
        self._buffer.append(ExpireAtProxyRecord(time, topic, event_id, where))

    def rank_change(
        self,
        time: float,
        topic: str,
        event_id: int,
        old_rank: float,
        new_rank: float,
        outcome: str,
    ) -> None:
        self.recorded += 1
        self._buffer.append(
            RankChangeRecord(time, topic, event_id, old_rank, new_rank, outcome)
        )

    def read_exchange(
        self, time: float, topic: str, n: int, candidates: int, sent: int,
        queue_size: int,
    ) -> None:
        self.recorded += 1
        self._buffer.append(
            ReadExchangeRecord(time, topic, n, candidates, sent, queue_size)
        )

    def quiet_defer(self, time: float, topic: str, until: float) -> None:
        self.recorded += 1
        self._buffer.append(QuietDeferRecord(time, topic, until))

    def budget_exhaust(self, time: float, topic: str, event_id: int) -> None:
        self.recorded += 1
        self._buffer.append(BudgetExhaustRecord(time, topic, event_id))

    def delivery_drop(
        self, time: float, topic: str, event_id: int, attempt: int
    ) -> None:
        self.recorded += 1
        self._buffer.append(DeliveryDropRecord(time, topic, event_id, attempt))

    def duplicate_delivery(self, time: float, topic: str, event_id: int) -> None:
        self.recorded += 1
        self._buffer.append(DuplicateDeliveryRecord(time, topic, event_id))

    def crash(self, time: float) -> None:
        self.recorded += 1
        self._buffer.append(CrashRecord(time))

    def recover(self, time: float, downtime: float, requeued: int) -> None:
        self.recorded += 1
        self._buffer.append(RecoverRecord(time, downtime, requeued))

    # ------------------------------------------------------------------
    # Inspection / export
    # ------------------------------------------------------------------
    def records(self) -> List[ObsRecord]:
        """A snapshot of the current window, oldest first."""
        return list(self._buffer)

    def last(self, k: int) -> List[ObsRecord]:
        """The most recent ``k`` records, oldest first."""
        if k <= 0:
            return []
        buffer = self._buffer
        if k >= len(buffer):
            return list(buffer)
        return [buffer[i] for i in range(len(buffer) - k, len(buffer))]

    def clear(self) -> None:
        self._buffer.clear()
        self.recorded = 0

    def export_jsonl(self, path: Union[str, Path]) -> int:
        """Write the current window as JSON-lines; returns lines written.

        Raises :class:`~repro.errors.ExportError` when the target cannot
        be written (missing directory, permissions, read-only mount) —
        the ``--trace-out`` path is user input, not an internal bug.
        """
        records = self.records()
        try:
            with Path(path).open("w", encoding="utf-8") as handle:
                for record in records:
                    handle.write(json.dumps(as_dict(record), sort_keys=True))
                    handle.write("\n")
        except OSError as exc:
            raise ExportError(
                f"cannot write trace export to {path}: {exc}"
            ) from exc
        return len(records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceRecorder({len(self._buffer)}/{self._capacity} held, "
            f"{self.recorded} recorded)"
        )


def load_jsonl(path: Union[str, Path]) -> List[dict]:
    """Read a ``--trace-out`` export back as a list of plain dicts.

    A truncated or otherwise corrupt line raises
    :class:`~repro.errors.ConfigurationError` naming the offending line,
    never a bare traceback from the JSON layer.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    records: List[dict] = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{path}:{number}: truncated or corrupt trace record: {exc}"
            ) from exc
    return records


#: Optional recorder slot, the type the proxy holds.
OptionalRecorder = Optional[TraceRecorder]
