"""The context-update handler.

Maps a device's context (location) changes onto plain subscribe() /
unsubscribe() calls for parameterized topics — the paper's example being
"traffic updates for whatever city the user happens to be in".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.broker.broker import DeliveryCallback
from repro.broker.client_api import Subscriber
from repro.broker.subscriptions import Subscription
from repro.context.gps import Location
from repro.errors import SubscriptionError
from repro.types import TopicType


@dataclass
class ParameterizedInterest:
    """One location-parameterized interest of a user.

    ``template`` must contain a ``{param}`` placeholder that the handler
    fills with the current region name, e.g. ``news/traffic/{city}``.
    """

    template: str
    param: str = "city"
    callback: Optional[DeliveryCallback] = None
    max_per_read: int = 8
    threshold: float = 0.0
    mode: TopicType = TopicType.ON_DEMAND
    subscription: Optional[Subscription] = field(default=None, compare=False)


class ContextUpdateHandler:
    """Re-subscribes parameterized interests when the context changes.

    Example::

        handler = ContextUpdateHandler(subscriber)
        handler.register(ParameterizedInterest("news/traffic/{city}",
                                               callback=proxy_cb))
        handler.on_context_update(tromso)   # subscribes news/traffic/tromso
        handler.on_context_update(oslo)     # re-subscribes news/traffic/oslo
    """

    def __init__(self, subscriber: Subscriber) -> None:
        self._subscriber = subscriber
        self._interests: List[ParameterizedInterest] = []
        self._current: Optional[Location] = None
        self.updates_handled = 0
        self.resubscriptions = 0

    @property
    def current_location(self) -> Optional[Location]:
        return self._current

    @property
    def interests(self) -> List[ParameterizedInterest]:
        return list(self._interests)

    def register(self, interest: ParameterizedInterest) -> None:
        """Add a parameterized interest. If a context is already known,
        the interest is subscribed immediately."""
        if interest.callback is None:
            raise SubscriptionError("interest needs a delivery callback")
        self._interests.append(interest)
        if self._current is not None:
            self._subscribe(interest, self._current)

    def on_context_update(self, location: Location) -> None:
        """Handle a context update from the device (e.g. a GPS fix that
        resolved to a new region)."""
        self.updates_handled += 1
        if self._current is not None and self._current.name == location.name:
            return  # same region; nothing to re-subscribe
        self._current = location
        for interest in self._interests:
            if interest.subscription is not None:
                self._subscriber.unsubscribe(interest.subscription)
                interest.subscription = None
            self._subscribe(interest, location)
            self.resubscriptions += 1

    def _subscribe(self, interest: ParameterizedInterest, location: Location) -> None:
        interest.subscription = self._subscriber.subscribe(
            interest.template,
            interest.callback,
            max_per_read=interest.max_per_read,
            threshold=interest.threshold,
            mode=interest.mode,
            **{interest.param: location.name},
        )
