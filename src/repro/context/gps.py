"""A coarse GPS/location model.

The granularity that matters to the pub/sub layer is the *region* a
device is in (e.g. the city whose traffic updates are relevant), so the
model maps raw coordinates onto named regions and generates movement
tracks as timed region visits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.sim.rng import RandomSource
from repro.units import DAY


@dataclass(frozen=True)
class Location:
    """A named circular region around a coordinate."""

    name: str
    latitude: float
    longitude: float
    radius_km: float = 25.0

    def distance_km(self, latitude: float, longitude: float) -> float:
        """Great-circle distance from the region centre, in km."""
        lat1, lon1 = math.radians(self.latitude), math.radians(self.longitude)
        lat2, lon2 = math.radians(latitude), math.radians(longitude)
        h = (
            math.sin((lat2 - lat1) / 2) ** 2
            + math.cos(lat1) * math.cos(lat2) * math.sin((lon2 - lon1) / 2) ** 2
        )
        return 2 * 6371.0 * math.asin(math.sqrt(min(1.0, h)))

    def contains(self, latitude: float, longitude: float) -> bool:
        return self.distance_km(latitude, longitude) <= self.radius_km


@dataclass(frozen=True)
class Visit:
    """One stay in a region."""

    time: float
    location: Location


@dataclass(frozen=True)
class MovementTrack:
    """A timed sequence of region visits for one device."""

    visits: Tuple[Visit, ...]

    def location_at(self, time: float) -> Optional[Location]:
        """The region the device is in at ``time`` (None before the
        first visit)."""
        current: Optional[Location] = None
        for visit in self.visits:
            if visit.time > time:
                break
            current = visit.location
        return current

    def transitions(self) -> List[Visit]:
        """Visits that actually change the region (consecutive dedup)."""
        result: List[Visit] = []
        for visit in self.visits:
            if not result or result[-1].location.name != visit.location.name:
                result.append(visit)
        return result


@dataclass(frozen=True)
class TrackConfig:
    """Random-walk track generator configuration.

    The device starts in ``home`` and takes trips to other regions; mean
    time between moves is ``mean_stay`` seconds, and after each trip it
    returns home with probability ``homing``.
    """

    home: Location
    destinations: Tuple[Location, ...]
    mean_stay: float = 3 * DAY
    homing: float = 0.6

    def validate(self) -> None:
        if not self.destinations:
            raise ConfigurationError("track needs at least one destination")
        if self.mean_stay <= 0:
            raise ConfigurationError(f"mean_stay must be positive, got {self.mean_stay}")
        if not 0.0 <= self.homing <= 1.0:
            raise ConfigurationError(f"homing must be within [0, 1], got {self.homing}")


def generate_track(
    config: TrackConfig, duration: float, rng: RandomSource
) -> MovementTrack:
    """Generate a movement track over ``duration`` seconds."""
    config.validate()
    if duration <= 0:
        raise ConfigurationError(f"duration must be positive, got {duration}")
    stay_rng = rng.spawn("track-stays")
    move_rng = rng.spawn("track-moves")
    visits: List[Visit] = [Visit(time=0.0, location=config.home)]
    t = stay_rng.exponential(config.mean_stay)
    while t < duration:
        here = visits[-1].location
        if here.name != config.home.name and move_rng.bernoulli(config.homing):
            nxt = config.home
        else:
            choices = [d for d in config.destinations if d.name != here.name]
            nxt = move_rng.choice(choices) if choices else config.home
        visits.append(Visit(time=t, location=nxt))
        t += stay_rng.exponential(config.mean_stay)
    return MovementTrack(visits=tuple(visits))
