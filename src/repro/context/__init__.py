"""Context-aware subscription management (paper §2.3).

"Upon a context update from a GPS-enabled mobile device, the proxy
detects a change in context and re-subscribes the user to the traffic
updates topic with the new location as a parameter. Despite a
potentially unlimited variety of such services, in our pub/sub system
their functionality can be mapped into a simple context update handler,
which performs standard subscribe() and unsubscribe() operations."

* :mod:`~repro.context.gps` — a coarse location model: named regions
  (cities) and a movement track generator.
* :mod:`~repro.context.handler` — the context-update handler that maps
  location changes onto re-subscriptions of parameterized topics.
"""

from repro.context.gps import Location, MovementTrack, TrackConfig, generate_track
from repro.context.handler import ContextUpdateHandler, ParameterizedInterest

__all__ = [
    "ContextUpdateHandler",
    "Location",
    "MovementTrack",
    "ParameterizedInterest",
    "TrackConfig",
    "generate_track",
]
