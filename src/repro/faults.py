"""Deterministic, seed-driven fault injection for the last hop.

The paper treats the last hop as a lossy, outage-prone scarce resource,
but the base model only covers binary UP/DOWN outages: every transfer
that starts, succeeds. This module adds the rest of the failure surface
— dropped, duplicated, and jittered deliveries, proxy crash/restart
cycles, and stale or duplicated offline read reports — while keeping
runs exactly reproducible.

Two layers:

* :class:`FaultSpec` — the frozen, hashable, picklable *description* of
  a fault regime (rates and retry knobs). It is what travels through
  CLI flags, worker-process initializers, and cache keys.
* :class:`FaultPlan` — the per-run *realization* of a spec for one
  scenario seed. Every fault decision is a pure function of
  ``(seed, site, event id, attempt)`` via SHA-256 — no shared RNG state
  — so injecting faults cannot perturb the trace streams, paired
  baseline/policy runs see the same plan, and raising a rate strictly
  grows the set of dropped attempts (the metamorphic monotonicity the
  differential tests pin). Crash times come from a named
  :class:`~repro.sim.rng.RandomSource` substream of the scenario seed.

The hard guarantee: a null spec (``FaultSpec.none()`` or no ``--faults``
flag) builds no plan at all, and every fault-aware code path reduces to
the exact pre-fault behaviour — figure tables, the validate scorecard,
and cache keys stay byte-identical.

Process-wide configuration mirrors :mod:`repro.sim.trace_cache` and
:mod:`repro.obs`: :func:`configure` installs the active spec (the CLI's
``--faults``), :func:`active_spec` reads it, and the parallel executor
re-applies it inside worker processes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.sim.rng import RandomSource
from repro.units import DAY


@dataclass(frozen=True)
class FaultSpec:
    """Frozen description of one fault regime.

    All-zero rates describe the fault-free world; such a spec with
    default retry knobs is *null* (:meth:`is_null`) and never builds a
    plan. A spec with zero rates but non-default retry knobs still
    engages the ack–retry delivery path — useful for proving the
    protocol is metrically transparent when nothing actually fails.
    """

    #: Probability that one delivery attempt is lost on the last hop.
    loss_rate: float = 0.0
    #: Probability that a successful delivery arrives twice.
    duplicate_rate: float = 0.0
    #: Mean of the exponential extra latency added per delivery (s).
    jitter_mean: float = 0.0
    #: Poisson rate of proxy crash events (per simulated day).
    crashes_per_day: float = 0.0
    #: Downtime before a crashed proxy restarts (seconds).
    restart_delay: float = 0.0
    #: Probability that one offline-read log entry is duplicated (the
    #: copy arrives late and out of order — stale by construction).
    report_duplicate_rate: float = 0.0
    #: Initial retry backoff after a lost delivery attempt (seconds).
    retry_base: float = 1.0
    #: Cap on the exponential backoff (seconds).
    retry_cap: float = 60.0
    #: Retries per notification before the transfer is abandoned.
    max_retries: int = 8

    def validate(self) -> None:
        for name in ("loss_rate", "duplicate_rate", "report_duplicate_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be within [0, 1], got {value}"
                )
        for name in ("jitter_mean", "crashes_per_day", "restart_delay"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(
                    f"{name} must be non-negative, got {value}"
                )
        if self.retry_base <= 0:
            raise ConfigurationError(
                f"retry_base must be positive, got {self.retry_base}"
            )
        if self.retry_cap < self.retry_base:
            raise ConfigurationError(
                f"retry_cap ({self.retry_cap}) must be >= retry_base "
                f"({self.retry_base})"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )

    @property
    def is_null(self) -> bool:
        """True when this spec injects nothing and tweaks nothing."""
        return self == FaultSpec()

    @classmethod
    def none(cls) -> "FaultSpec":
        """The canonical null spec (guaranteed byte-identity)."""
        return cls()

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Build a spec from a preset name or a JSON object string.

        Accepted forms (the CLI's ``--faults`` values)::

            FaultSpec.parse("lossy")
            FaultSpec.parse('{"loss_rate": 0.2, "max_retries": 4}')
        """
        text = text.strip()
        if text.startswith("{"):
            try:
                data = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"--faults JSON is malformed: {exc}"
                ) from exc
            if not isinstance(data, dict):
                raise ConfigurationError(
                    "--faults JSON must be an object of FaultSpec fields"
                )
            known = {field.name for field in dataclasses.fields(cls)}
            unknown = sorted(set(data) - known)
            if unknown:
                raise ConfigurationError(
                    f"unknown fault field(s) {', '.join(unknown)} "
                    f"(known: {', '.join(sorted(known))})"
                )
            try:
                spec = cls(**data)
            except TypeError as exc:
                raise ConfigurationError(f"invalid fault spec: {exc}") from exc
            spec.validate()
            return spec
        try:
            return PRESETS[text]
        except KeyError:
            raise ConfigurationError(
                f"unknown fault preset {text!r} "
                f"(presets: {', '.join(sorted(PRESETS))}; or pass a JSON object)"
            ) from None


#: Named fault regimes for the CLI's ``--faults`` flag.
PRESETS: Dict[str, FaultSpec] = {
    # The guaranteed-identity regime.
    "none": FaultSpec(),
    # Zero rates but a non-default retry budget: the ack–retry protocol
    # runs on every delivery yet nothing fails — results must converge
    # to the fault-free metrics (pinned by the differential tests).
    "reliable": FaultSpec(max_retries=12),
    # A plausibly bad cellular last hop.
    "lossy": FaultSpec(loss_rate=0.15, duplicate_rate=0.05, jitter_mean=0.05),
    # Everything at once: heavy loss, duplicates, latency spikes, daily
    # proxy crashes with visible downtime, corrupted read reports.
    "chaos": FaultSpec(
        loss_rate=0.3,
        duplicate_rate=0.1,
        jitter_mean=0.5,
        crashes_per_day=1.0,
        restart_delay=30.0,
        report_duplicate_rate=0.2,
    ),
}


class FaultPlan:
    """The realization of a :class:`FaultSpec` for one scenario seed.

    Holds the pre-drawn proxy crash schedule and answers per-delivery
    fault questions as pure hash functions of the identifying tuple, so
    two runs over the same trace (e.g. the paired baseline and policy
    runs) see exactly the same faults, and no draw can perturb any
    other random stream.
    """

    __slots__ = ("spec", "seed", "crash_times")

    def __init__(
        self, spec: FaultSpec, seed: int, crash_times: Tuple[float, ...] = ()
    ) -> None:
        self.spec = spec
        self.seed = seed
        self.crash_times = crash_times

    @classmethod
    def build(
        cls, spec: Optional[FaultSpec], seed: int, duration: float
    ) -> Optional["FaultPlan"]:
        """Realize ``spec`` for a run, or None for a null spec.

        Returning None (rather than an inert plan) is the identity
        guarantee's mechanism: every fault-aware call site branches on
        ``plan is None`` and falls through to the exact pre-fault code.
        """
        if spec is None or spec.is_null:
            return None
        spec.validate()
        crash_times: Tuple[float, ...] = ()
        if spec.crashes_per_day > 0 and duration > 0:
            rng = RandomSource(seed).spawn("faults:crashes")
            crash_times = tuple(
                rng.poisson_process(spec.crashes_per_day / DAY, 0.0, duration)
            )
        return cls(spec, seed, crash_times)

    @classmethod
    def none(cls) -> None:
        """The null plan: no faults, no protocol, byte-identical runs."""
        return None

    # ------------------------------------------------------------------
    # Hash-derived decisions
    # ------------------------------------------------------------------
    def _unit(self, *parts: object) -> float:
        """Uniform [0, 1) draw, a pure function of (seed, parts)."""
        key = ":".join(str(part) for part in (self.seed, "faults") + parts)
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64

    def drop_delivery(self, event_id: int, attempt: int) -> bool:
        """Whether this delivery attempt is lost on the last hop.

        The underlying uniform depends only on ``(event_id, attempt)``,
        so the dropped-attempt set under loss rate p is a subset of the
        set under any p' > p — delivery retries are pathwise monotone in
        the loss rate.
        """
        rate = self.spec.loss_rate
        return rate > 0.0 and self._unit("drop", int(event_id), attempt) < rate

    def duplicate_delivery(self, event_id: int) -> bool:
        """Whether a successfully delivered notification arrives twice."""
        rate = self.spec.duplicate_rate
        return rate > 0.0 and self._unit("dup", int(event_id)) < rate

    def delivery_jitter(self, event_id: int, attempt: int) -> float:
        """Extra delivery latency (s), exponential with the spec's mean."""
        mean = self.spec.jitter_mean
        if mean <= 0.0:
            return 0.0
        u = self._unit("jitter", int(event_id), attempt)
        return -mean * math.log(1.0 - u)

    def retry_backoff(self, attempt: int) -> float:
        """Capped exponential backoff before retry number ``attempt``."""
        spec = self.spec
        return min(spec.retry_base * (2.0 ** (attempt - 1)), spec.retry_cap)

    def corrupt_read_report(
        self, topic: str, entries: Sequence[Tuple[float, int]]
    ) -> Tuple[List[Tuple[float, int]], int]:
        """Duplicate some offline-read log entries, appended at the end.

        The duplicated copies arrive after newer entries — stale,
        out-of-order, *and* duplicated — which is exactly what the
        proxy's monotone read-report merge must tolerate. Returns the
        corrupted log and how many entries were injected.
        """
        rate = self.spec.report_duplicate_rate
        corrupted = list(entries)
        if rate <= 0.0:
            return corrupted, 0
        extras = [
            entry
            for entry in entries
            if self._unit("report", topic, repr(float(entry[0]))) < rate
        ]
        corrupted.extend(extras)
        return corrupted, len(extras)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(seed={self.seed}, crashes={len(self.crash_times)}, "
            f"spec={self.spec})"
        )


#: Process-wide active fault spec (the CLI's ``--faults``), consulted by
#: the experiment runner; the parallel executor forwards it to workers.
_ACTIVE_SPEC: Optional[FaultSpec] = None


def configure(spec: Optional[FaultSpec]) -> Optional[FaultSpec]:
    """Install (or, with None / a null spec, clear) the active regime.

    A null spec normalizes to None so that ``--faults none`` is
    *literally* the same process state as omitting the flag — the
    byte-identity guarantee holds by construction, not by luck.
    """
    global _ACTIVE_SPEC
    if spec is not None:
        spec.validate()
    _ACTIVE_SPEC = None if spec is None or spec.is_null else spec
    return _ACTIVE_SPEC


def active_spec() -> Optional[FaultSpec]:
    """The process-wide fault spec, or None when faults are off."""
    return _ACTIVE_SPEC
