#!/usr/bin/env python3
"""The waste/loss trade-off across the whole policy spectrum (§3).

Sweeps the last-hop forwarding policy — from always-push to never-push,
through rate-based and buffer-based prefetching at several limits — on
one frozen trace, and prints the trade-off table the paper's evaluation
is about. Also demonstrates the device-constraint models: the same
unified policy run with a storage cap and a battery budget.

Run:  python examples/last_hop_tradeoff.py
"""

from repro import (
    Battery,
    PolicyConfig,
    ScenarioConfig,
    StoragePolicy,
    build_trace,
    run_paired,
    run_scenario,
)
from repro.metrics.waste_loss import pair_metrics
from repro.units import DAY
from repro.workload import ArrivalConfig, OutageConfig, ReadConfig


def main() -> None:
    config = ScenarioConfig(
        duration=120 * DAY,
        arrivals=ArrivalConfig(events_per_day=32.0),
        reads=ReadConfig(reads_per_day=2.0, read_count=8),
        outages=OutageConfig(
            downtime_fraction=0.5, outages_per_day=4.0, duration_sigma=0.5
        ),
    )
    trace = build_trace(config, seed=1)
    print(trace.describe())
    print()

    spectrum = [
        ("on-line", PolicyConfig.online()),
        ("buffer limit 65536", PolicyConfig.buffer(prefetch_limit=65536)),
        ("buffer limit 256", PolicyConfig.buffer(prefetch_limit=256)),
        ("buffer limit 64", PolicyConfig.buffer(prefetch_limit=64)),
        ("buffer limit 16", PolicyConfig.buffer(prefetch_limit=16)),
        ("buffer limit 4", PolicyConfig.buffer(prefetch_limit=4)),
        ("buffer limit 1", PolicyConfig.buffer(prefetch_limit=1)),
        ("rate-based", PolicyConfig.rate()),
        ("unified (adaptive)", PolicyConfig.unified()),
        ("pure on-demand", PolicyConfig.on_demand()),
    ]
    print(f"{'policy':22s} {'waste %':>8s} {'loss %':>8s} {'forwarded':>10s} "
          f"{'kB sent':>8s}")
    for label, policy in spectrum:
        result = run_paired(trace, policy)
        stats = result.policy.stats
        print(
            f"{label:22s} {result.metrics.waste_percent:8.1f} "
            f"{result.metrics.loss_percent:8.1f} {stats.forwarded:10d} "
            f"{stats.bytes_sent / 1024:8.0f}"
        )

    print()
    print("device constraints (§2.3), unified policy:")
    constrained = [
        ("no constraints", {}),
        ("storage cap: 12 messages", {"storage": StoragePolicy(max_messages=12)}),
        (
            "battery: 1000 units",
            {"battery": Battery(capacity=1000.0, receive_cost=1.0, read_cost=0.1)},
        ),
    ]
    # Loss is judged against the *unconstrained* on-line baseline: the
    # constraint is part of the policy side of the trade-off.
    baseline = run_scenario(trace, PolicyConfig.online())
    for label, kwargs in constrained:
        result = run_scenario(trace, PolicyConfig.unified(), **kwargs)
        metrics = pair_metrics(baseline.stats, result.stats)
        stats = result.stats
        extras = []
        if stats.displaced:
            extras.append(f"displaced {stats.displaced}")
        if stats.battery_spent:
            extras.append(
                f"battery spent {stats.battery_spent:.0f}, "
                f"outcome {stats.outcome.value}"
            )
        print(
            f"  {label:26s} waste {metrics.waste_percent:5.1f} %  "
            f"loss {metrics.loss_percent:5.1f} %  "
            f"{'  '.join(extras)}"
        )


if __name__ == "__main__":
    main()
