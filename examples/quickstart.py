#!/usr/bin/env python3
"""Quickstart: measure waste and loss of the paper's unified algorithm.

Builds the paper's baseline scenario (32 notifications/day, a user who
reads 8 messages twice a day, a last-hop link that is down 70 % of the
time), freezes one randomized trace, and executes the paired runs: the
on-line baseline and the unified prefetching algorithm of Figure 7.

Run:  python examples/quickstart.py
"""

from repro import PolicyConfig, ScenarioConfig, build_trace, run_paired
from repro.units import DAY
from repro.workload import ArrivalConfig, OutageConfig, ReadConfig


def main() -> None:
    config = ScenarioConfig(
        duration=120 * DAY,
        arrivals=ArrivalConfig(events_per_day=32.0),
        reads=ReadConfig(reads_per_day=2.0, read_count=8),
        outages=OutageConfig(
            downtime_fraction=0.7, outages_per_day=4.0, duration_sigma=0.5
        ),
    )
    trace = build_trace(config, seed=42)
    print(trace.describe())
    print()

    for label, policy in [
        ("on-line (forward everything)", PolicyConfig.online()),
        ("pure on-demand (never push)", PolicyConfig.on_demand()),
        ("unified prefetching (Figure 7)", PolicyConfig.unified()),
    ]:
        result = run_paired(trace, policy)
        print(f"{label:32s} waste {result.metrics.waste_percent:5.1f} %   "
              f"loss {result.metrics.loss_percent:5.1f} %")

    print()
    print("The unified algorithm keeps vain traffic on the last hop to a")
    print("few percentage points while the quality of service stays high —")
    print("the paper's concluding claim.")


if __name__ == "__main__":
    main()
