#!/usr/bin/env python3
"""Location-aware traffic updates via the context-update handler (§2.3).

"A subscription to a topic for traffic updates could be contingent upon
the device being located in the home city of the user. Perhaps more
ambitiously, such subscription could be 'parameterized' to receive
traffic updates for whatever city the user happens to be in."

A traveller moves between three Norwegian cities over two months; each
city's road authority publishes traffic updates on its own topic. The
context-update handler re-subscribes the parameterized topic
``news/traffic/{city}`` on every move, so the device only ever receives
the traffic that is relevant where it is.

Run:  python examples/traffic_context.py
"""

from collections import Counter

from repro import (
    BrokerOverlay,
    Publisher,
    RandomSource,
    Simulator,
    Subscriber,
)
from repro.context.gps import Location, TrackConfig, generate_track
from repro.context.handler import ContextUpdateHandler, ParameterizedInterest
from repro.types import NodeId
from repro.units import DAY, HOUR

CITIES = (
    Location("tromso", 69.65, 18.96),
    Location("oslo", 59.91, 10.75),
    Location("bergen", 60.39, 5.32),
)


def main() -> None:
    sim = Simulator()
    rng = RandomSource(seed=11)

    overlay = BrokerOverlay(sim)
    hub = overlay.add_broker(NodeId("hub"))
    roads = Publisher(NodeId("vegvesen"), hub, sim)
    for city in CITIES:
        roads.advertise(f"news/traffic/{city.name}", f"Traffic updates for {city.name}")

    received = Counter()
    subscriber = Subscriber(NodeId("traveller-proxy"), hub)
    handler = ContextUpdateHandler(subscriber)
    handler.register(
        ParameterizedInterest(
            template="news/traffic/{city}",
            callback=lambda n, _s: received.update([n.topic]),
            threshold=0.0,
        )
    )

    # Two months of movement: home in Tromsø, trips to Oslo and Bergen.
    track = generate_track(
        TrackConfig(home=CITIES[0], destinations=CITIES[1:], mean_stay=5 * DAY),
        duration=60 * DAY,
        rng=rng.spawn("track"),
    )
    for visit in track.transitions():
        sim.schedule_at(visit.time, handler.on_context_update, visit.location)

    # Each city publishes traffic updates around rush hours.
    publish_rng = rng.spawn("traffic")
    for day in range(60):
        for city in CITIES:
            for rush in (8 * HOUR, 16 * HOUR):
                for _ in range(publish_rng.poisson(3.0)):
                    time = day * DAY + rush + publish_rng.normal(0.0, HOUR)
                    severity = publish_rng.uniform(0.0, 5.0)
                    sim.schedule_at(
                        max(0.0, time),
                        lambda c=city.name, s=severity: roads.publish(
                            f"news/traffic/{c}", rank=s, expires_in=4 * HOUR
                        ),
                    )

    sim.run(until=60 * DAY)

    time_in = Counter()
    for earlier, later in zip(track.visits, list(track.visits[1:]) + [None]):
        end = 60 * DAY if later is None else later.time
        time_in[earlier.location.name] += end - earlier.time

    print(f"moves made              : {len(track.transitions()) - 1}")
    print(f"re-subscriptions issued : {handler.resubscriptions}")
    print()
    print("city      days present   updates received")
    for city in CITIES:
        days = time_in[city.name] / DAY
        count = received[f"news/traffic/{city.name}"]
        print(f"{city.name:8s}  {days:12.1f}   {count:16d}")
    total = sum(received.values())
    print(f"\ntotal updates received  : {total} "
          f"(≈ {total / 60:.1f}/day, only ever for the current city)")


if __name__ == "__main__":
    main()
