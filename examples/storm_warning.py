#!/usr/bin/env python3
"""Ranks, expirations, and retractions on a weather topic (§2.1, §3.4).

"If, for example, a publisher of a weather topic fails to attach a high
priority to a storm warning, resulting in that message being lost among
other weather updates, a user would likely consider switching to a
different publisher."

A weather service publishes routine updates (low rank, short
expiration) and occasional storm warnings (rank 4.9, long expiration).
A mis-ranked warning is corrected upward after publication; a false
alarm is retracted by a rank drop. The device's Threshold-4 subscription
plus the proxy's rank-change handling make sure the user sees exactly
the warnings that matter.

Run:  python examples/storm_warning.py
"""

from repro import (
    BrokerOverlay,
    ClientDevice,
    LastHopLink,
    LastHopProxy,
    PolicyConfig,
    ProxyConfig,
    Publisher,
    RandomSource,
    RunStats,
    Simulator,
    Subscriber,
)
from repro.types import NodeId, TopicId
from repro.units import DAY, HOUR

TOPIC = "news/weather/tromso"
THRESHOLD = 4.0


def main() -> None:
    sim = Simulator()
    stats = RunStats()
    rng = RandomSource(seed=3)

    overlay = BrokerOverlay(sim)
    hub = overlay.add_broker(NodeId("hub"))
    met = Publisher(NodeId("met.no"), hub, sim)
    met.advertise(TOPIC, "Tromsø weather")

    link = LastHopLink(sim, stats)
    device = ClientDevice(sim, link, stats)
    device.add_topic(TopicId(TOPIC), threshold=THRESHOLD)
    proxy = LastHopProxy(
        sim, link, ProxyConfig(PolicyConfig.buffer(prefetch_limit=8)), stats
    )
    proxy.add_topic(TopicId(TOPIC), rank_threshold=THRESHOLD)
    device.attach_proxy(proxy)
    link.add_status_listener(proxy.on_network)
    Subscriber(NodeId("phone-proxy"), hub).subscribe(
        TOPIC,
        lambda n, _s: proxy.on_notification(n),
        threshold=THRESHOLD,
    )

    # A week of routine forecasts: rank ~2, valid for six hours.
    for day in range(7):
        for hour in range(0, 24, 3):
            time = day * DAY + hour * HOUR
            rank = rng.uniform(1.0, 3.0)
            sim.schedule_at(
                time,
                lambda r=rank: met.publish(
                    TOPIC, rank=r, expires_in=6 * HOUR, payload="routine forecast"
                ),
            )

    events = {}

    def publish_warning(key, rank, payload):
        events[key] = met.publish(TOPIC, rank=rank, expires_in=4 * DAY, payload=payload)

    # Day 2: a storm warning, correctly ranked — goes straight through.
    sim.schedule_at(2 * DAY, publish_warning, "storm", 4.9, "STORM WARNING")
    # Day 4: a mis-ranked warning (2.5), corrected to 4.8 an hour later.
    sim.schedule_at(4 * DAY, publish_warning, "misranked", 2.5, "gale warning")
    sim.schedule_at(
        4 * DAY + HOUR, lambda: met.change_rank(events["misranked"].event_id, 4.8)
    )
    # Day 5: a false alarm at 4.7, retracted below threshold an hour later.
    sim.schedule_at(5 * DAY, publish_warning, "false-alarm", 4.7, "false alarm")
    sim.schedule_at(
        5 * DAY + HOUR, lambda: met.change_rank(events["false-alarm"].event_id, 0.5)
    )

    # The user checks messages half a day after the false alarm was
    # retracted; both genuine warnings are still in force.
    sim.run(until=5 * DAY + 12 * HOUR)
    outcome = device.perform_read(TopicId(TOPIC), 8)

    print(f"forecasts published        : {stats.arrivals}")
    print(f"accepted above threshold 4 : {stats.accepted}")
    print(f"rank changes processed     : {stats.rank_changes}")
    print(f"retractions over last hop  : {stats.retractions_sent}")
    print(f"retracted on device        : {stats.retracted_on_device}")
    print()
    print("what the user reads:")
    for message in outcome.consumed:
        print(f"  rank {message.rank:.1f}  {message.payload}")

    payloads = {m.payload for m in outcome.consumed}
    assert "STORM WARNING" in payloads
    assert "gale warning" in payloads       # boosted into view
    assert "false alarm" not in payloads    # retracted before reading
    assert "routine forecast" not in payloads


if __name__ == "__main__":
    main()
