#!/usr/bin/env python3
"""Resilient delivery: replicated proxies and cooperating devices (§4).

The paper's future-work list names two availability problems: the proxy
as a single point of failure, and cooperation among a user's devices.
This example exercises both extensions on one challenging scenario —
a commuter whose phone spends 90 % of the time off the network in long,
heavy-tailed outages:

1. the last-hop proxy is a primary/backup pair, and the primary is
   crashed halfway through the run;
2. the user also owns a well-cached laptop whose link fails
   independently; reads on the phone borrow from the laptop's cache
   over the local ad-hoc network.

Run:  python examples/resilient_delivery.py
"""

import dataclasses

from repro import PolicyConfig, run_paired
from repro.experiments.cooperation import CooperationConfig, run_cooperative_paired
from repro.experiments.runner import ReplicationSpec
from repro.units import DAY
from repro.workload import ArrivalConfig, OutageConfig, ReadConfig
from repro.workload.scenario import ScenarioConfig, build_trace

DAYS = 120


def main() -> None:
    config = ScenarioConfig(
        duration=DAYS * DAY,
        arrivals=ArrivalConfig(events_per_day=32.0),
        reads=ReadConfig(reads_per_day=2.0, read_count=8),
        outages=OutageConfig(
            downtime_fraction=0.9, outages_per_day=1.0, duration_sigma=1.0
        ),
    )
    trace = build_trace(config, seed=21)
    print(trace.describe())
    print()

    # 1. Replication: crash the primary proxy on day 60.
    plain = run_paired(trace, PolicyConfig.unified())
    crashed = run_paired(
        trace,
        PolicyConfig.unified(),
        replication=ReplicationSpec(fail_primary_at=60 * DAY),
    )
    print("single proxy                 "
          f"waste {plain.metrics.waste_percent:5.1f} %  "
          f"loss {plain.metrics.loss_percent:5.1f} %")
    print("replicated, primary dies d60 "
          f"waste {crashed.metrics.waste_percent:5.1f} %  "
          f"loss {crashed.metrics.loss_percent:5.1f} %   "
          "(failover is invisible to the user)")
    print()

    # 2. Cooperation: add a laptop whose link fails independently.
    for peers, label in ((1, "phone + laptop"), (2, "phone + laptop + tablet")):
        together = run_cooperative_paired(
            trace,
            PolicyConfig.unified(),
            CooperationConfig(n_peers=peers, peer_outage_fraction=0.5),
        )
        print(f"{label:28s} "
              f"waste {together.metrics.waste_percent:5.1f} %  "
              f"loss {together.metrics.loss_percent:5.1f} %   "
              f"(borrowed {together.cooperative.borrowed} from peer caches)")

    print()
    print("Long heavy-tailed outages exhaust a lone phone's prefetch buffer;")
    print("peer caches recover a large share of the reads the on-line")
    print("baseline would have served — the effect §4 anticipates.")


if __name__ == "__main__":
    main()
