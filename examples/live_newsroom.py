#!/usr/bin/env python3
"""A live newsroom: diurnal publishing, quiet hours, urgent interrupts.

Ties together the pieces the other examples use in isolation:

* a :class:`~repro.broker.drivers.PoissonPublisher` emits stories with
  a working-day diurnal profile through the real broker overlay;
* the user's topic is ON-LINE with a §2.2 delivery schedule — at most
  12 pushes per day, night quiet hours (23:00–07:00) — so routine
  stories never buzz the phone at 3 a.m.;
* stories ranked 4.5+ are *urgent* and break through both limits;
* everything the schedule holds back stays readable on demand.

Run:  python examples/live_newsroom.py
"""

from collections import Counter
import math

from repro import (
    BrokerOverlay,
    ClientDevice,
    DeliverySchedule,
    DiurnalProfile,
    LastHopLink,
    LastHopProxy,
    PolicyConfig,
    ProxyConfig,
    Publisher,
    QuietHours,
    RandomSource,
    RunStats,
    Simulator,
    Subscriber,
    TopicType,
)
from repro.broker.drivers import PoissonPublisher
from repro.types import DeliveryMode, NodeId, TopicId
from repro.units import DAY, HOUR
from repro.workload.arrivals import ArrivalConfig

TOPIC = "news/headlines"
DAYS = 30


def main() -> None:
    sim = Simulator()
    stats = RunStats()
    rng = RandomSource(seed=17)

    overlay = BrokerOverlay(sim)
    hub = overlay.add_broker(NodeId("hub"))
    newsroom = Publisher(NodeId("newsroom"), hub, sim)
    newsroom.advertise(TOPIC, "Headlines")

    link = LastHopLink(sim, stats)
    device = ClientDevice(sim, link, stats)
    device.add_topic(TopicId(TOPIC))
    schedule = DeliverySchedule(
        quiet_hours=QuietHours(windows=((0.0, 7.0), (23.0, 24.0))),
        max_pushes_per_day=12,
        urgent_threshold=4.5,
    )
    proxy = LastHopProxy(sim, link, ProxyConfig(PolicyConfig.unified()), stats)
    proxy.add_topic(TopicId(TOPIC), topic_type=TopicType.ONLINE, schedule=schedule)
    device.attach_proxy(proxy)
    link.add_status_listener(proxy.on_network)
    Subscriber(NodeId("phone-proxy"), hub).subscribe(
        TOPIC, lambda n, _s: proxy.on_notification(n)
    )

    # Live publishing: ~40 stories/day shaped by the working day.
    PoissonPublisher(
        sim,
        newsroom,
        TOPIC,
        ArrivalConfig(events_per_day=40.0, expiring_fraction=1.0,
                      expiration_mean=2 * DAY),
        rng.spawn("newsroom"),
        profile=DiurnalProfile.working_day(),
    )

    # Observe when pushes land on the device, and which were urgent.
    push_hours = Counter()
    routine_pushes = 0
    night_routine_pushes = 0
    original_receive = device.receive

    def observing_receive(notification, mode):
        nonlocal routine_pushes, night_routine_pushes
        if mode is DeliveryMode.PUSHED:
            hour = int(math.fmod(sim.now, DAY) // HOUR)
            push_hours[hour] += 1
            if notification.rank < 4.5:
                routine_pushes += 1
                if hour >= 23 or hour < 7:
                    night_routine_pushes += 1
        original_receive(notification, mode)

    device.receive = observing_receive

    # The user checks headlines twice a day.
    for day in range(DAYS):
        for check_hour in (8.5, 19.0):
            sim.schedule_at(
                day * DAY + check_hour * HOUR,
                device.perform_read,
                TopicId(TOPIC),
                8,
            )

    sim.run(until=DAYS * DAY)

    night_pushes = sum(push_hours[h] for h in (23, 0, 1, 2, 3, 4, 5, 6))
    urgent_pushes = stats.pushed - routine_pushes
    print(f"stories published          : {stats.arrivals}")
    print(f"routine pushes             : {routine_pushes} "
          f"({routine_pushes / DAYS:.1f}/day, cap 12)")
    print(f"urgent pushes (rank ≥ 4.5) : {urgent_pushes} "
          "(exempt from cap and quiet hours)")
    print(f"pushed during night quiet  : {night_pushes} (urgent stories only)")
    print(f"pulled on demand           : {stats.pulled}")
    print(f"read by the user           : {stats.messages_read}")
    print()
    print("pushes by hour of day:")
    peak = max(push_hours.values())
    for hour in range(24):
        bar = "#" * round(20 * push_hours[hour] / peak)
        print(f"  {hour:02d}:00 {push_hours[hour]:4d} {bar}")

    assert routine_pushes <= 12 * DAYS
    assert night_routine_pushes == 0  # quiet hours hold all routine stories


if __name__ == "__main__":
    main()
