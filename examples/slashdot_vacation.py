#!/usr/bin/env python3
"""The paper's Slashdot example (§2.2), end to end through the broker.

"If one wanted to subscribe to the 'Slashdot' topic, the two thresholds
used in concert would allow one to request the highest-ranked stories
and comments above threshold 4.5 (out of 5 maximum), but not more than
30 at a time. Provided that the stories do not expire too quickly, one
can come back from a month-long vacation and read the most important
bits from the past month."

This example wires a publisher, a two-broker overlay, a last-hop proxy,
and a mobile device; publishes a month of stories while the device is
off the grid; and then performs the single post-vacation read.

Run:  python examples/slashdot_vacation.py
"""

from repro import (
    BrokerOverlay,
    ClientDevice,
    LastHopLink,
    LastHopProxy,
    NetworkStatus,
    PolicyConfig,
    ProxyConfig,
    Publisher,
    RandomSource,
    RunStats,
    Simulator,
    Subscriber,
)
from repro.types import NodeId, TopicId
from repro.units import DAY, HOUR

TOPIC = "news/slashdot"
THRESHOLD = 4.5
MAX_PER_READ = 30


def main() -> None:
    sim = Simulator()
    stats = RunStats()
    rng = RandomSource(seed=7)

    # The wired pub/sub substrate: Slashdot publishes at a core broker,
    # the user's proxy subscribes at an edge broker.
    overlay = BrokerOverlay(sim)
    core = overlay.add_broker(NodeId("core"))
    edge = overlay.add_broker(NodeId("edge"))
    overlay.connect(NodeId("core"), NodeId("edge"), latency=0.040)
    slashdot = Publisher(NodeId("slashdot"), core, sim)
    slashdot.advertise(TOPIC, "News for nerds, stuff that matters")

    # The last hop: proxy -> link -> device.
    link = LastHopLink(sim, stats)
    device = ClientDevice(sim, link, stats)
    device.add_topic(TopicId(TOPIC), threshold=THRESHOLD)
    proxy = LastHopProxy(sim, link, ProxyConfig(PolicyConfig.on_demand()), stats)
    proxy.add_topic(TopicId(TOPIC), rank_threshold=THRESHOLD)
    device.attach_proxy(proxy)
    link.add_status_listener(proxy.on_network)
    subscriber = Subscriber(NodeId("proxy-for-phone"), edge)
    subscriber.subscribe(
        TOPIC,
        lambda notification, _sub: proxy.on_notification(notification),
        max_per_read=MAX_PER_READ,
        threshold=THRESHOLD,
    )

    # The user leaves on vacation: the device is unreachable for a month.
    link.set_status(NetworkStatus.DOWN)

    # A month of Slashdot: ~40 stories/day with uniform ranks and
    # week-long expirations for ordinary stories; editor's picks last.
    def publish_month():
        for day in range(30):
            for _ in range(40):
                rank = rng.uniform(0.0, 5.0)
                expires = None if rank > 4.0 else 7 * DAY
                yield day * DAY + rng.uniform(0.0, DAY), rank, expires

    published = 0
    for time, rank, expires in sorted(publish_month()):
        sim.schedule_at(
            time,
            lambda r=rank, e=expires: slashdot.publish(TOPIC, rank=r, expires_in=e),
        )
        published += 1

    # Back home after 30 days: the link returns, the user reads once.
    sim.schedule_at(30 * DAY + 1 * HOUR, link.set_status, NetworkStatus.UP)
    sim.run(until=30 * DAY + 2 * HOUR)
    outcome = device.perform_read(TopicId(TOPIC), MAX_PER_READ)

    print(f"published stories          : {published}")
    print(f"accepted above threshold   : {stats.accepted}")
    print(f"filtered below threshold   : {stats.filtered}")
    print(f"stories read after vacation: {outcome.count}")
    ranks = [f"{m.rank:.2f}" for m in outcome.consumed[:10]]
    print(f"top ranks read             : {', '.join(ranks)} …")
    print(f"messages wasted            : {stats.wasted} "
          f"(pure on-demand guarantees zero)")
    assert outcome.count == MAX_PER_READ
    assert all(m.rank >= THRESHOLD for m in outcome.consumed)
    assert stats.wasted == 0


if __name__ == "__main__":
    main()
