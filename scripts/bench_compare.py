#!/usr/bin/env python3
"""Compare two ``BENCH_core.json`` files and fail on perf regressions.

The benchmark suite (``pytest benchmarks --benchmark-only``) emits
``BENCH_core.json`` — micro-op timings plus per-figure wall clock — via
the hook in ``benchmarks/conftest.py``. This script diffs a current file
against a checked-in baseline and exits non-zero when any shared
benchmark regressed by more than the allowed fraction::

    python scripts/bench_compare.py benchmarks/BENCH_core.json BENCH_core.json
    python scripts/bench_compare.py baseline.json current.json --max-regression 0.25

Comparison uses each benchmark's ``min`` by default: minimum round time
is the least noise-sensitive statistic a shared CI runner produces.
Benchmarks present on only one side are reported but never fail the
check (new benchmarks must be allowed to land).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Tuple


def load_benchmarks(path: Path) -> Dict[str, dict]:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        sys.exit(f"bench_compare: {path} does not exist")
    except json.JSONDecodeError as exc:
        sys.exit(f"bench_compare: {path} is not valid JSON: {exc}")
    benchmarks = data.get("benchmarks")
    if not isinstance(benchmarks, dict) or not benchmarks:
        sys.exit(f"bench_compare: {path} contains no benchmarks")
    return benchmarks


def format_seconds(value: float) -> str:
    if value < 1e-3:
        return f"{value * 1e6:8.1f}µs"
    if value < 1.0:
        return f"{value * 1e3:8.2f}ms"
    return f"{value:8.3f}s "


def compare(
    baseline: Dict[str, dict],
    current: Dict[str, dict],
    metric: str,
    max_regression: float,
) -> Tuple[int, str]:
    """Return (number of regressions, rendered report)."""
    lines = []
    regressions = 0
    shared = sorted(set(baseline) & set(current))
    width = max((len(name) for name in shared), default=10)
    for name in shared:
        base = baseline[name].get(metric)
        curr = current[name].get(metric)
        if not isinstance(base, (int, float)) or not isinstance(curr, (int, float)) or base <= 0:
            lines.append(f"  SKIP   {name}: metric {metric!r} missing or unusable")
            continue
        ratio = curr / base
        delta = ratio - 1.0
        verdict = "ok"
        if delta > max_regression:
            verdict = "REGRESSION"
            regressions += 1
        elif delta < -max_regression:
            verdict = "improved"
        lines.append(
            f"  {verdict:10s} {name:<{width}s} "
            f"{format_seconds(base)} -> {format_seconds(curr)}  ({delta:+7.1%})"
        )
    for name in sorted(set(current) - set(baseline)):
        lines.append(f"  new        {name} (no baseline; not checked)")
    for name in sorted(set(baseline) - set(current)):
        lines.append(f"  missing    {name} (in baseline only; not checked)")
    header = (
        f"bench_compare: {len(shared)} shared benchmark(s), metric={metric!r}, "
        f"threshold=+{max_regression:.0%}"
    )
    return regressions, "\n".join([header] + lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="checked-in BENCH_core.json baseline")
    parser.add_argument("current", type=Path, help="freshly emitted BENCH_core.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional slowdown per benchmark (default 0.25 = +25%%)",
    )
    parser.add_argument(
        "--metric",
        choices=["min", "mean", "median"],
        default="min",
        help="per-benchmark statistic to compare (default: min)",
    )
    args = parser.parse_args(argv)
    regressions, report = compare(
        load_benchmarks(args.baseline),
        load_benchmarks(args.current),
        metric=args.metric,
        max_regression=args.max_regression,
    )
    print(report)
    if regressions:
        print(f"bench_compare: {regressions} benchmark(s) regressed beyond the threshold")
        return 1
    print("bench_compare: no regression beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
