#!/usr/bin/env bash
# Regenerate every full-scale table in results/ plus the scorecard.
# One virtual year per run; ~15 minutes total on a laptop.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

figures=$(python -m repro.experiments.cli list | awk '{print $1}' | grep -v '^validate$')
for fig in $figures; do
    echo "=== $fig"
    python -m repro.experiments.cli "$fig" --quiet --output "results/$fig.txt"
done
echo "=== validate"
python -m repro.experiments.cli validate --quiet --output results/validate.txt
echo "done; see results/"
