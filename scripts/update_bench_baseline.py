#!/usr/bin/env python3
"""Re-run the benchmark suite and refresh ``benchmarks/BENCH_core.json``.

The committed baseline is the perf trajectory ``scripts/bench_compare.py``
gates CI against. After an intentional performance change, regenerate it
with::

    python scripts/update_bench_baseline.py             # micro + sweep_1d
    python scripts/update_bench_baseline.py -k micro    # subset
    python scripts/update_bench_baseline.py --all       # every benchmark

The script runs pytest with ``--benchmark-only`` (the conftest hook
emits the JSON), prints the comparison against the previous baseline for
the record, then moves the fresh file into place. Commit the updated
``benchmarks/BENCH_core.json`` together with the change that motivated
it.
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "benchmarks" / "BENCH_core.json"

#: Default selection mirrors the CI bench-smoke job.
DEFAULT_SELECT = "micro or sweep_1d or fleet"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-k",
        dest="select",
        default=DEFAULT_SELECT,
        help=f"pytest -k expression selecting benchmarks (default: {DEFAULT_SELECT!r})",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="run every benchmark module (overrides -k)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="run and compare, but leave the committed baseline untouched",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="bench-baseline-") as tmp:
        fresh = Path(tmp) / "BENCH_core.json"
        env = dict(os.environ)
        env["BENCH_CORE_OUT"] = str(fresh)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(REPO / "src"), env.get("PYTHONPATH")) if p
        )
        cmd = [sys.executable, "-m", "pytest", "benchmarks", "-q", "--benchmark-only"]
        if not args.all:
            cmd += ["-k", args.select]
        print("+", " ".join(cmd))
        run = subprocess.run(cmd, cwd=REPO, env=env)
        if run.returncode != 0:
            print("update_bench_baseline: benchmark run failed; baseline untouched")
            return run.returncode
        if not fresh.exists():
            print("update_bench_baseline: no BENCH_core.json emitted; baseline untouched")
            return 1

        if BASELINE.exists():
            # Informational: never fails the refresh (the point is to
            # accept a new trajectory), but the delta belongs in the log.
            subprocess.run(
                [
                    sys.executable,
                    str(REPO / "scripts" / "bench_compare.py"),
                    str(BASELINE),
                    str(fresh),
                    "--max-regression",
                    "1e9",
                ],
                cwd=REPO,
            )
        if args.dry_run:
            print(f"update_bench_baseline: dry run; {BASELINE} left untouched")
            return 0
        shutil.move(str(fresh), BASELINE)
        print(f"update_bench_baseline: wrote {BASELINE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
